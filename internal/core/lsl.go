//paralint:deterministic

// Package core implements ParaVerser itself (section IV of the paper):
// the load-store-log entry format and Load-Store Log Cache accounting, the
// Load-Store Push Unit, the Register Checkpointing Unit, the Load-Store
// Comparator, the instruction counter, speculative indexed log access for
// out-of-order checker cores, eager checker waking, Hash Mode, the
// full-coverage and opportunistic operating modes, checker-core
// allocation, and the system orchestrator that couples main cores to
// checker cores over the NoC.
package core

import (
	"fmt"

	"paraverser/internal/emu"
	"paraverser/internal/isa"
)

// EntryKind classifies a load-store-log entry.
type EntryKind uint8

// Entry kinds. Enums start at one.
const (
	EntryInvalid EntryKind = iota
	EntryLoad
	EntryStore
	EntryLoadStore // atomic swap: loaded data then stored data
	EntryGather    // two loads, two base addresses
	EntryScatter   // two stores, two base addresses
	EntryNonRepeat // RAND/CYCLE value, payload only
)

// MemRec is one address/size/data triple inside an entry.
type MemRec struct {
	Addr uint64
	Size uint8
	Data uint64
	Load bool
}

// Entry is one load-store-log entry in ISA format (section IV-B): a 7-byte
// address, a 1-byte size and a payload rounded to the nearest 8 bytes.
// Multi-address instructions (scatter/gather) store each address, size and
// data in sequence, lowest address first (footnote 10). Atomic swaps carry
// the loaded data first, then the stored data.
type Entry struct {
	Kind EntryKind
	Ops  []MemRec
}

// EntryFromEffect builds the log entry for an executed instruction, or
// returns ok=false when the instruction produces no entry.
func EntryFromEffect(eff *emu.Effect) (Entry, bool) {
	var arena []MemRec
	return EntryFromEffectArena(eff, &arena)
}

// EntryFromEffectArena is EntryFromEffect with the entry's Ops carved out
// of a caller-owned arena: the records are appended to *arena and the
// entry receives a capacity-clipped sub-slice, so a segment's worth of
// entries shares one grow-once backing array instead of allocating per
// instruction. The caller must not truncate the arena while any entry
// taken from it is still reachable (Segment copies that outlive a
// segment must deep-copy their Ops).
//
//paralint:hotpath
func EntryFromEffectArena(eff *emu.Effect, arena *[]MemRec) (Entry, bool) {
	a := *arena
	start := len(a)
	var e Entry
	if eff.NonRepeat {
		e.Kind = EntryNonRepeat
		//paralint:allow(arena append: grows once per segment, then reuses capacity)
		a = append(a, MemRec{Size: 8, Data: eff.NonRepeatVal, Load: true})
	} else {
		if eff.NMem == 0 {
			return Entry{}, false
		}
		for i := 0; i < eff.NMem; i++ {
			m := eff.Mem[i]
			//paralint:allow(arena append: grows once per segment, then reuses capacity)
			a = append(a, MemRec{
				Addr: m.Addr, Size: m.Size, Data: m.Data, Load: m.Kind == emu.MemLoad,
			})
		}
		nOps := len(a) - start
		switch eff.Class {
		case isa.ClassAtomic:
			e.Kind = EntryLoadStore // load first, then store: already in order
		case isa.ClassLoad:
			if nOps == 2 {
				e.Kind = EntryGather
			} else {
				e.Kind = EntryLoad
			}
		case isa.ClassStore:
			if nOps == 2 {
				e.Kind = EntryScatter
			} else {
				e.Kind = EntryStore
			}
		default:
			return Entry{}, false
		}
	}
	*arena = a
	e.Ops = a[start:len(a):len(a)]
	return e, true
}

// WireOps returns the ops in the on-wire LSL$ layout order: multi-address
// (scatter/gather) entries store each address, size and data in sequence,
// lowest address first (footnote 10 of the paper). In-memory Ops stay in
// execution order because the checker's comparator consumes them by the
// instruction's own operand order.
func (e Entry) WireOps() []MemRec {
	ops := append([]MemRec(nil), e.Ops...)
	if (e.Kind == EntryGather || e.Kind == EntryScatter) &&
		len(ops) == 2 && ops[1].Addr < ops[0].Addr {
		ops[0], ops[1] = ops[1], ops[0]
	}
	return ops
}

// payloadBytes returns the data payload size, rounded up to 8 bytes per
// datum as the LSL format requires.
func roundUp8(n int) int { return (n + 7) &^ 7 }

// SizeBytes returns the encoded entry size pushed over the NoC.
//
// In normal mode every op contributes 7B address + 1B size + its payload
// rounded to 8B (an atomic swap shares one address: 7+1 then both
// payloads). In Hash Mode only data needed to reproduce execution is
// stored — loaded data and non-repeatable values, payload only — while
// addresses, sizes and stored data are folded into the running SHA-256
// (section IV-I), so stores contribute nothing.
func (e Entry) SizeBytes(hashMode bool) int {
	if hashMode {
		n := 0
		for _, op := range e.Ops {
			if op.Load {
				n += roundUp8(int(op.Size))
			}
		}
		return n
	}
	switch e.Kind {
	case EntryNonRepeat:
		return 8 // payload only: nothing to verify, only to replay
	case EntryLoadStore:
		// One base address, then loaded and stored payloads.
		return 8 + roundUp8(int(e.Ops[0].Size)) + roundUp8(int(e.Ops[1].Size))
	case EntryGather, EntryScatter:
		n := 0
		for _, op := range e.Ops {
			n += 8 + roundUp8(int(op.Size))
		}
		return n
	default:
		return 8 + roundUp8(int(e.Ops[0].Size))
	}
}

// Validate checks structural invariants of the entry.
func (e Entry) Validate() error {
	switch e.Kind {
	case EntryLoad, EntryStore, EntryNonRepeat:
		if len(e.Ops) != 1 {
			return fmt.Errorf("core: %v entry with %d ops", e.Kind, len(e.Ops))
		}
	case EntryLoadStore, EntryGather, EntryScatter:
		if len(e.Ops) != 2 {
			return fmt.Errorf("core: %v entry with %d ops", e.Kind, len(e.Ops))
		}
	default:
		return fmt.Errorf("core: invalid entry kind %d", e.Kind)
	}
	if e.Kind == EntryGather || e.Kind == EntryScatter {
		w := e.WireOps()
		if w[0].Addr > w[1].Addr {
			return fmt.Errorf("core: wire layout of multi-address entry not lowest-address-first")
		}
	}
	if e.Kind == EntryLoadStore && (!e.Ops[0].Load || e.Ops[1].Load) {
		return fmt.Errorf("core: swap entry must be load-then-store")
	}
	return nil
}
