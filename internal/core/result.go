package core

import (
	"paraverser/internal/maintenance"
	"paraverser/internal/obs"
)

// Sample caps keep diagnostic samples bounded regardless of run length.
const (
	sampleMismatchCap = 8
	sampleRecoveryCap = 16
)

// LaneResult reports one main core's run.
type LaneResult struct {
	Name string
	Hart int
	// CoreName and FreqGHz identify the lane's main-core model (lanes
	// can be heterogeneous via Config.LaneMains).
	CoreName string
	FreqGHz  float64

	Insts    uint64
	TimeNS   float64
	Segments int

	CheckedInsts   uint64
	UncheckedInsts uint64
	StallNS        float64
	CheckpointNS   float64

	// LogBytes is the LSL payload generated; LogLines the NoC messages.
	LogBytes uint64
	LogLines uint64

	// Detections counts segments whose check raised an error;
	// FirstDetectionInst is the main-core instruction count at the first
	// detection (-1 when none) — the detection-latency metric of fig. 8.
	Detections         int
	FirstDetectionInst int64
	// SampleMismatches holds a few mismatches for diagnosis.
	SampleMismatches []Mismatch

	// Recovery aggregates the error-recovery pipeline's activity;
	// SampleRecoveries holds the first few recovery events for
	// diagnosis.
	Recovery         RecoveryStats
	SampleRecoveries []RecoveryEvent

	// DegradedSegments/Insts/NS account the graceful-degradation
	// windows: segments a full-coverage lane ran unchecked because
	// quarantine had emptied its active checker pool. Coverage recovers
	// when probation readmits checkers.
	DegradedSegments int
	DegradedInsts    uint64
	DegradedNS       float64

	// MainBusyNS approximates the main core's busy (non-stalled) time
	// for energy accounting.
	MainBusyNS float64
}

// Coverage returns the run-time instruction coverage: the fraction of
// executed main-core instructions that were checked (section VII-B).
func (r *LaneResult) Coverage() float64 {
	if r.Insts == 0 {
		return 0
	}
	return float64(r.CheckedInsts) / float64(r.Insts)
}

// DegradedRatio returns the fraction of executed instructions that ran
// in graceful-degradation windows (an emptied or fully-quarantined
// checker pool). Guarded like Coverage: a lane that executed nothing —
// an empty workload, or a warmup window consuming the entire run —
// reports 0 rather than NaN.
func (r *LaneResult) DegradedRatio() float64 {
	if r.Insts == 0 {
		return 0
	}
	return float64(r.DegradedInsts) / float64(r.Insts)
}

// DegradedTimeShare returns degraded wall-clock time over lane
// wall-clock time, guarded against zero-duration lanes.
func (r *LaneResult) DegradedTimeShare() float64 {
	if r.TimeNS <= 0 {
		return 0
	}
	return r.DegradedNS / r.TimeNS
}

// CheckerResult reports one checker core's activity.
type CheckerResult struct {
	ID       int
	CoreName string
	FreqGHz  float64
	BusyNS   float64
	Insts    uint64
	Segments int

	// State is the checker's pool standing at run end; Offenses how many
	// times it was quarantined.
	State    CheckerState
	Offenses int
}

// Result is the outcome of one system run.
type Result struct {
	Lanes []LaneResult
	// CheckersByLane[l] lists the checker cores serving lane l.
	CheckersByLane [][]CheckerResult

	// MaxLinkUtilisation is the peak NoC link load observed.
	MaxLinkUtilisation float64
	// AvgLLCExtraNS is the mean queueing delay added to LLC accesses by
	// mesh contention (what the paper back-propagates).
	AvgLLCExtraNS float64

	// Maintenance is the live fleet tracker the recovery pipeline fed
	// during the run (nil when recovery is disabled). Judge it with any
	// maintenance.Policy to get retirement recommendations.
	Maintenance *maintenance.Tracker

	// Metrics is the run's observability shard: raw event counters over
	// the whole run including warmup (unlike the Lane/Checker statistics
	// above, which subtract the warmup window). Byte-identical at every
	// CheckWorkers setting; shards from different runs merge
	// commutatively (obs.RunMetrics.Merge).
	Metrics *obs.RunMetrics
}

// Recovery aggregates the recovery pipeline's activity over lanes.
func (r *Result) Recovery() RecoveryStats {
	var st RecoveryStats
	for i := range r.Lanes {
		st.Add(r.Lanes[i].Recovery)
	}
	return st
}

// DegradedNS sums the graceful-degradation windows over lanes.
func (r *Result) DegradedNS() float64 {
	var ns float64
	for i := range r.Lanes {
		ns += r.Lanes[i].DegradedNS
	}
	return ns
}

// TimeNS returns the longest lane time (the run's wall clock).
func (r *Result) TimeNS() float64 {
	var max float64
	for i := range r.Lanes {
		if r.Lanes[i].TimeNS > max {
			max = r.Lanes[i].TimeNS
		}
	}
	return max
}

// TotalInsts sums instructions over lanes.
func (r *Result) TotalInsts() uint64 {
	var n uint64
	for i := range r.Lanes {
		n += r.Lanes[i].Insts
	}
	return n
}

// TotalCPI returns aggregate cycles-per-instruction-style metric used for
// the multi-process slowdown of fig. 10: total core-time divided by total
// instructions.
func (r *Result) TotalCPI(freqGHz float64) float64 {
	var t float64
	for i := range r.Lanes {
		t += r.Lanes[i].TimeNS
	}
	if n := r.TotalInsts(); n > 0 {
		return t * freqGHz / float64(n)
	}
	return 0
}

// Detections sums detections over lanes.
func (r *Result) Detections() int {
	var n int
	for i := range r.Lanes {
		n += r.Lanes[i].Detections
	}
	return n
}

// DegradedRatio returns the degraded-instruction fraction aggregated
// over lanes, with the same zero-total guard as Coverage: a run whose
// lanes executed nothing (or an empty lane list, e.g. a fully-degenerate
// campaign trial) reports 0, never NaN.
func (r *Result) DegradedRatio() float64 {
	var deg, total uint64
	for i := range r.Lanes {
		deg += r.Lanes[i].DegradedInsts
		total += r.Lanes[i].Insts
	}
	if total == 0 {
		return 0
	}
	return float64(deg) / float64(total)
}

// Coverage returns instruction coverage aggregated over lanes.
func (r *Result) Coverage() float64 {
	var checked, total uint64
	for i := range r.Lanes {
		checked += r.Lanes[i].CheckedInsts
		total += r.Lanes[i].Insts
	}
	if total == 0 {
		return 0
	}
	return float64(checked) / float64(total)
}
