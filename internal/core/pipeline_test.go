package core

import (
	"fmt"
	"testing"

	"paraverser/internal/cpu"
	"paraverser/internal/emu"
	"paraverser/internal/isa"
)

// renderResult flattens every externally observable statistic of a run
// into one string — including the metrics shard, whose queue-depth and
// latency histograms are the values most tempted to vary with
// scheduling — so equality means the experiment tables AND the metrics
// export built from the Result are byte-identical.
func renderResult(res *Result) string {
	return fmt.Sprintf("lanes=%v\ncheckers=%v\nlink=%v llc=%v\nmetrics=%s",
		res.Lanes, res.CheckersByLane, res.MaxLinkUtilisation, res.AvgLLCExtraNS,
		res.Metrics.String())
}

// TestPipelinedWorkerCountInvariance is the determinism contract of the
// pipelined verification engine: the same configuration must produce a
// byte-identical Result whether checks run inline (CheckWorkers 1) or
// overlapped on 2 or 8 workers, across operating modes, wake policies
// and hash mode, with warmup snapshots and multiple lanes in play.
func TestPipelinedWorkerCountInvariance(t *testing.T) {
	prog := mixedProgram(12000)
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"full-coverage-eager", func(c *Config) {}},
		{"full-coverage-late-wake", func(c *Config) { c.EagerWake = false }},
		{"hash-mode", func(c *Config) { c.HashMode = true }},
		{"opportunistic-sampled", func(c *Config) {
			c.Mode = ModeOpportunistic
			c.SamplePeriod = 3
			c.Checkers = []CheckerSpec{{CPU: cpu.A35(), FreqGHz: 0.5, Count: 1}}
		}},
		// The non-pipelined strategies must render identically at every
		// worker count too — by staying sequential, not by overlapping.
		{"chunk-replay", func(c *Config) { c.Strategy = StrategyChunkReplay }},
		{"relaxed", func(c *Config) { c.Strategy = StrategyRelaxed }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var base string
			for _, workers := range []int{1, 2, 8} {
				cfg := DefaultConfig(a510Checkers(2, 2.0))
				tc.mut(&cfg)
				cfg.CheckWorkers = workers
				ws := []Workload{
					{Name: "m0", Prog: prog, MaxInsts: 8000, WarmupInsts: 2000},
					{Name: "m1", Prog: prog},
				}
				res, err := Run(cfg, ws)
				if err != nil {
					t.Fatal(err)
				}
				got := renderResult(res)
				if workers == 1 {
					base = got
					continue
				}
				if got != base {
					t.Errorf("CheckWorkers=%d diverged from CheckWorkers=1:\n--- 1 ---\n%s\n--- %d ---\n%s",
						workers, base, workers, got)
				}
			}
		})
	}
}

// TestRunBitDeterminism pins bit-exact run-to-run reproducibility of
// the float statistics (MaxLinkUtilisation, AvgLLCExtraNS): flow-map
// iteration order must never leak into per-link load accumulation.
func TestRunBitDeterminism(t *testing.T) {
	prog := mixedProgram(12000)
	var base string
	for i := 0; i < 4; i++ {
		cfg := DefaultConfig(a510Checkers(2, 2.0))
		cfg.EagerWake = false
		ws := []Workload{
			{Name: "m0", Prog: prog, MaxInsts: 8000, WarmupInsts: 2000},
			{Name: "m1", Prog: prog},
		}
		res, err := Run(cfg, ws)
		if err != nil {
			t.Fatal(err)
		}
		got := fmt.Sprintf("%v %v", res.MaxLinkUtilisation, res.AvgLLCExtraNS)
		if i == 0 {
			base = got
			continue
		}
		if got != base {
			t.Errorf("run %d diverged: %s vs %s", i, got, base)
		}
	}
}

// TestPipelinedCleanAndCovered re-asserts the core invariants of a
// full-coverage run under overlapped checking: no spurious detections,
// full coverage, and per-checker instruction accounting that still sums
// to the lane's checked instructions after all the deferred joins.
func TestPipelinedCleanAndCovered(t *testing.T) {
	cfg := DefaultConfig(a510Checkers(4, 2.0))
	cfg.CheckWorkers = 4
	res, err := Run(cfg, []Workload{{Name: "mixed", Prog: mixedProgram(20000)}})
	if err != nil {
		t.Fatal(err)
	}
	lane := res.Lanes[0]
	if lane.Detections != 0 {
		t.Fatalf("clean pipelined run raised %d detections: %v", lane.Detections, lane.SampleMismatches)
	}
	if got := lane.Coverage(); got != 1.0 {
		t.Errorf("full-coverage pipelined run covered %.3f, want 1.0", got)
	}
	var ckInsts uint64
	for _, ck := range res.CheckersByLane[0] {
		ckInsts += ck.Insts
	}
	if ckInsts != lane.CheckedInsts {
		t.Errorf("checkers verified %d insts, main checked %d", ckInsts, lane.CheckedInsts)
	}
}

// benchSegment packages a 2000-instruction mixed segment for the
// checker-side replay benchmarks.
func benchSegment(b *testing.B) (*isa.Program, *Segment) {
	b.Helper()
	prog := mixedProgram(1 << 30)
	mach, err := emu.NewMachine(prog, 1)
	if err != nil {
		b.Fatal(err)
	}
	hart := mach.Harts[0]
	seg := &Segment{Hart: 0, Start: hart.State}
	var eff emu.Effect
	for seg.Insts < 2000 {
		if err := mach.StepHart(0, &eff); err != nil {
			b.Fatal(err)
		}
		seg.Insts++
		if e, ok := EntryFromEffect(&eff); ok {
			seg.Entries = append(seg.Entries, e)
		}
	}
	seg.End = hart.State
	return prog, seg
}

// BenchmarkCheckSegment measures one checker-side segment replay (the
// unit of work the pipelined engine overlaps with the main lane) on the
// block-compiled path the engine runs by default: a 2000-instruction
// mixed segment verified end to end with batched effect delivery.
func BenchmarkCheckSegment(b *testing.B) {
	prog, seg := benchSegment(b)
	// The scratch lives outside the loop exactly as each Checker holds
	// one across segments: steady-state verification allocates nothing.
	var cs CheckScratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := cs.CheckSegmentBlocks(prog, seg, false, nil)
		if res.Detected() {
			b.Fatalf("benchmark segment failed verification: %+v", res.Mismatches)
		}
	}
	b.ReportMetric(float64(seg.Insts)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Minst/s")
}

// BenchmarkCheckSegmentStep is the per-instruction baseline
// (BlockExecOff, and the fallback under fault interceptors): the same
// segment verified through CheckSegment one effect at a time.
func BenchmarkCheckSegmentStep(b *testing.B) {
	prog, seg := benchSegment(b)
	var cs CheckScratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := cs.CheckSegment(prog, seg, false, nil, nil)
		if res.Detected() {
			b.Fatalf("benchmark segment failed verification: %+v", res.Mismatches)
		}
	}
	b.ReportMetric(float64(seg.Insts)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Minst/s")
}
