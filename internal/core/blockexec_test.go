package core

import (
	"testing"

	"paraverser/internal/cpu"
)

// runBlockExec runs cfg with the given execution engine over ws and
// returns the flattened result string (renderResult covers lane
// verdicts, checker stats, float link/LLC statistics and the metrics
// shard, so equality means byte-identical experiment tables).
func runBlockExec(t *testing.T, cfg Config, mode BlockExecMode, ws []Workload) string {
	t.Helper()
	cfg.BlockExec = mode
	res, err := Run(cfg, ws)
	if err != nil {
		t.Fatal(err)
	}
	return renderResult(res)
}

// TestBlockExecInvariance is the determinism contract of the
// block-compiled engine: every externally observable statistic of a run
// must be byte-identical whether emulation and checker replay execute
// per-instruction (BlockExecOff) or through the basic-block translation
// cache with batched effect delivery (BlockExecOn). The cases sweep the
// config axes that shape segment boundaries and check dispatch: wake
// policy, hash mode, opportunistic sampling (finite resume windows force
// the per-instruction fallback mid-run), interrupt cadence, pipelined
// workers, unchecked operation and divergent checking (a whole-lane
// fallback path).
func TestBlockExecInvariance(t *testing.T) {
	prog := mixedProgram(12000)
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"full-coverage-eager", func(c *Config) {}},
		{"full-coverage-late-wake", func(c *Config) { c.EagerWake = false }},
		{"hash-mode", func(c *Config) { c.HashMode = true }},
		{"opportunistic-sampled", func(c *Config) {
			c.Mode = ModeOpportunistic
			c.SamplePeriod = 3
			c.Checkers = []CheckerSpec{{CPU: cpu.A35(), FreqGHz: 0.5, Count: 1}}
		}},
		{"irq-interval", func(c *Config) { c.InterruptIntervalInsts = 700 }},
		{"pipelined-workers", func(c *Config) { c.CheckWorkers = 4 }},
		{"no-checking", func(c *Config) { c.Checkers = nil }},
		{"divergent", func(c *Config) { c.CheckMode = CheckDivergent }},
		{"chunk-replay", func(c *Config) { c.Strategy = StrategyChunkReplay }},
		{"relaxed", func(c *Config) { c.Strategy = StrategyRelaxed }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ws := []Workload{
				{Name: "m0", Prog: prog, MaxInsts: 8000, WarmupInsts: 2000},
				{Name: "m1", Prog: prog},
			}
			cfg := DefaultConfig(a510Checkers(2, 2.0))
			tc.mut(&cfg)
			base := runBlockExec(t, cfg, BlockExecOff, ws)
			if got := runBlockExec(t, cfg, BlockExecOn, ws); got != base {
				t.Errorf("block engine diverged from per-instruction engine:\n--- off ---\n%s\n--- on ---\n%s", base, got)
			}
			if got := runBlockExec(t, cfg, BlockExecAuto, ws); got != base {
				t.Errorf("auto mode diverged from per-instruction engine")
			}
		})
	}
}

// TestBlockExecSpecInvariance extends the contract to the
// parallel-in-time engine: with a speculation cache and TimeShards
// attached, both the recording run (speculative producer executed
// through the block engine) and the replay run (cursor reconstruction
// stays per-instruction; only timing delivery batches) must match the
// per-instruction sequential baseline exactly.
func TestBlockExecSpecInvariance(t *testing.T) {
	prog := mixedProgram(12000)
	ws := []Workload{
		{Name: "m0", Prog: prog, MaxInsts: 8000, WarmupInsts: 2000},
		{Name: "m1", Prog: prog},
	}
	cfg := DefaultConfig(a510Checkers(2, 2.0))
	cfg.BlockExec = BlockExecOff
	base := runSpec(t, cfg, ws)

	cache := NewSpecCache()
	cfg.BlockExec = BlockExecOn
	cfg.Spec = cache
	cfg.TimeShards = 4
	for i := 0; i < 3; i++ {
		if got := runSpec(t, cfg, ws); got != base {
			t.Fatalf("block-engine spec run %d diverged from per-instruction sequential baseline:\n--- base ---\n%s\n--- got ---\n%s", i, base, got)
		}
	}
	st := cache.Stats()
	if st.StreamsRecorded == 0 {
		t.Error("no stream was recorded under the block engine")
	}
	if st.StreamsReplayed == 0 {
		t.Error("no stream was replayed under the block engine")
	}
	if st.SpecAborts != 0 {
		t.Errorf("clean block-engine runs raised %d speculation aborts", st.SpecAborts)
	}
}

// TestBlockExecInterceptorInvariance pins the fault-injection fallback:
// a checker-side interceptor disables block-compiled replay for the
// affected dispatches (and recovery disables pipelining entirely), yet
// the whole run — detections, recovery verdicts, quarantine events —
// must remain byte-identical between engines, and the fault must
// actually fire under both so the comparison is not vacuous.
func TestBlockExecInterceptorInvariance(t *testing.T) {
	prog := mixedProgram(20000)
	run := func(mode BlockExecMode) (string, int) {
		cfg := DefaultConfig(a510Checkers(4, 2.0))
		cfg.Recovery = DefaultRecovery()
		cfg.BlockExec = mode
		intc := withCheckerFault(&cfg, 0, 3)
		res, err := Run(cfg, []Workload{{Name: "mixed", Prog: prog}})
		if err != nil {
			t.Fatal(err)
		}
		if res.Lanes[0].Detections == 0 {
			t.Fatal("persistent checker fault raised no detections; test is vacuous")
		}
		return renderResult(res), intc.fires
	}
	base, baseFires := run(BlockExecOff)
	got, gotFires := run(BlockExecOn)
	if baseFires == 0 || gotFires == 0 {
		t.Fatalf("interceptor fired %d/%d times (off/on); fallback never exercised", baseFires, gotFires)
	}
	if got != base {
		t.Errorf("interceptor run diverged between engines:\n--- off ---\n%s\n--- on ---\n%s", base, got)
	}
	if gotFires != baseFires {
		t.Errorf("interceptor fired %d times under the block engine, %d per-instruction", gotFires, baseFires)
	}
}
