package asm_test

import (
	"bytes"
	"math"
	"testing"

	"paraverser/internal/asm"
	"paraverser/internal/emu"
	"paraverser/internal/isa"
	"paraverser/internal/isa/verify"
	"paraverser/internal/workload/gap"
	"paraverser/internal/workload/spec"
)

// buildMixed exercises every operand shape the rewriter must understand:
// pointer materialisation, FP cross-file moves, gather/scatter, swap, and
// non-repeatable reads.
func buildMixed(t *testing.T) *isa.Program {
	t.Helper()
	b := asm.New("dme-mixed")
	arr := b.Reserve(64 * 8)
	b.Sym("arr", arr)
	out := b.Reserve(8)
	b.Sym("out", out)

	b.LiSym(10, "arr")
	b.Li(11, 64) // element count
	b.Li(12, 0)  // index
	b.Li(13, 0)  // accumulator
	b.Label("loop")
	b.Slli(14, 12, 3)
	b.Add(14, 10, 14) // &arr[i]
	b.Rand(15)
	b.Andi(15, 15, 0xFFFF)
	b.St(8, 15, 14, 0)
	b.Ld(8, 16, 14, 0)
	b.Add(13, 13, 16)
	b.Gld(8, 17, 14, 10, 0) // arr[i] + arr[0]
	b.Add(13, 13, 17)
	b.Sst(8, 13, 14, 10, 0) // arr[i] = arr[0] = acc
	b.Swp(18, 10, 13)
	b.Add(13, 13, 18)
	b.Fcvtif(1, 13)
	b.Fcvtif(2, 16)
	b.Fadd(3, 1, 2)
	b.Fsqrt(4, 3)
	b.Fmvfi(19, 4)
	b.Xor(13, 13, 19)
	b.Cycle(20)
	b.Add(13, 13, 20)
	b.Addi(12, 12, 1)
	b.Blt(12, 11, "loop")
	b.LiSym(21, "out")
	b.St(8, 13, 21, 0)
	b.Halt()
	p, err := b.BuildVerified()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return p
}

// runPair runs the original and its decorrelated variant side by side and
// proves the final architectural states and memories are related exactly
// by the variant map.
func runPair(t *testing.T, p *isa.Program, limit int64) {
	t.Helper()
	v, err := asm.Decorrelate(p, asm.DecorrelateOptions{RegSeed: 7})
	if err != nil {
		t.Fatalf("decorrelate %q: %v", p.Name, err)
	}
	if err := verify.EquivalentVariant(p, v.Prog, &v.Map); err != nil {
		t.Fatalf("equivalence %q: %v", p.Name, err)
	}
	if rep := verify.Verify(v.Prog); rep.Err() != nil {
		t.Fatalf("variant fails static verify: %v", rep.Err())
	}

	const seed = 42
	mo, err := emu.NewMachine(p, seed)
	if err != nil {
		t.Fatalf("orig machine: %v", err)
	}
	mv, err := emu.NewMachine(v.Prog, seed)
	if err != nil {
		t.Fatalf("variant machine: %v", err)
	}
	no, errO := mo.Run(limit, nil)
	nv, errV := mv.Run(limit, nil)
	if (errO == nil) != (errV == nil) || no != nv {
		t.Fatalf("%q: runs diverged: orig %d insts (%v), variant %d insts (%v)", p.Name, no, errO, nv, errV)
	}

	m := &v.Map
	span := isa.DataSpan(p)
	shiftVal := func(x uint64) uint64 {
		if x >= p.DataBase && x < p.DataBase+span {
			return x + m.DataShift
		}
		return x
	}
	for h := range mo.Harts {
		so, sv := &mo.Harts[h].State, &mv.Harts[h].State
		if sv.PC != so.PC {
			t.Fatalf("%q hart %d: pc %d vs %d", p.Name, h, sv.PC, so.PC)
		}
		for i := 0; i < isa.NumIntRegs; i++ {
			if got, want := sv.X[m.XPerm[i]], shiftVal(so.X[i]); got != want {
				t.Errorf("%q hart %d: x%d (variant x%d) = %#x, want %#x", p.Name, h, i, m.XPerm[i], got, want)
			}
		}
		for i := 0; i < isa.NumFPRegs; i++ {
			if got, want := math.Float64bits(sv.F[m.FPerm[i]]), math.Float64bits(so.F[i]); got != want {
				t.Errorf("%q hart %d: f%d (variant f%d) = %#x, want %#x", p.Name, h, i, m.FPerm[i], got, want)
			}
		}
	}
	if !bytes.Equal(mo.Mem.ReadBytes(p.DataBase, len(p.Data)), mv.Mem.ReadBytes(v.Prog.DataBase, len(p.Data))) {
		t.Errorf("%q: data segments diverged after run", p.Name)
	}
	for h := range mo.Harts {
		base := isa.StackBase - uint64(h)*isa.StackStride - 4096
		if !bytes.Equal(mo.Mem.ReadBytes(base, 4096), mv.Mem.ReadBytes(base, 4096)) {
			t.Errorf("%q: hart %d stack diverged after run", p.Name, h)
		}
	}
}

func TestDecorrelateMixedProgram(t *testing.T) {
	runPair(t, buildMixed(t), 0)
}

func TestDecorrelateWorkloads(t *testing.T) {
	for _, pr := range spec.Profiles() {
		prog, err := pr.Build(64)
		if err != nil {
			t.Fatalf("spec %s: %v", pr.Name, err)
		}
		runPair(t, prog, 100_000)
	}
	g := gap.Uniform(64, 4, 1)
	bfs, _ := gap.BFS(g, 0)
	pr, _ := gap.PageRank(g, 3)
	runPair(t, bfs, 100_000)
	runPair(t, pr, 100_000)
}

func TestDecorrelateRejectsBadShift(t *testing.T) {
	p := buildMixed(t)
	if _, err := asm.Decorrelate(p, asm.DecorrelateOptions{DataShiftBytes: 100}); err == nil {
		t.Error("unaligned shift accepted")
	}
	if _, err := asm.Decorrelate(p, asm.DecorrelateOptions{DataShiftBytes: 4096}); err == nil {
		t.Error("overlapping shift accepted")
	}
}

func TestDecorrelateSeedsDiffer(t *testing.T) {
	p := buildMixed(t)
	a, err := asm.Decorrelate(p, asm.DecorrelateOptions{RegSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := asm.Decorrelate(p, asm.DecorrelateOptions{RegSeed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a.Map.XPerm == b.Map.XPerm && a.Map.FPerm == b.Map.FPerm {
		t.Error("different seeds produced identical register permutations")
	}
}
