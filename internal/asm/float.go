package asm

import "math"

func floatBits(v float64) uint64 { return math.Float64bits(v) }
