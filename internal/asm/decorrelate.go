//paralint:deterministic

package asm

import (
	"fmt"

	"paraverser/internal/isa"
	"paraverser/internal/isa/verify"
)

// DecorrelateOptions tunes the structural decorrelation pass.
type DecorrelateOptions struct {
	// DataShiftBytes relocates the variant's data segment by this many
	// bytes. It must be 4KiB-aligned and at least the program's DataSpan
	// so original and variant windows are disjoint. Zero picks an
	// automatic shift that clears the window and sets several address
	// bits in the translated range, so any single stuck address bit
	// between 4KiB and 2MiB granularity lands on decorrelated layouts.
	DataShiftBytes uint64
	// RegSeed seeds the register-file permutations (0 behaves as 1).
	// Different seeds give differently renamed variants of the same
	// program.
	RegSeed uint64
}

// Variant is a structurally decorrelated rewrite of a program: same
// instruction-by-instruction computation, different address-space layout
// and register allocation. A layout-correlated hardware fault (stuck
// address bit, DRAM row fault, a specific physical register) therefore
// corrupts the original and the variant differently, which is what lets
// the divergent checking mode catch fault classes that identical-replay
// lockstep checking structurally cannot.
type Variant struct {
	Prog *isa.Program
	Map  verify.VariantMap
}

// autoShiftPattern is ORed (added — the low 12 bits are clear) onto the
// rounded data span for the automatic shift: bits 12, 14, 16, 18 and 20,
// so the translation flips address bits at every power-of-two stride from
// one page to 1MiB.
const autoShiftPattern = 0x155000

// Decorrelate rewrites p into a structurally decorrelated variant:
//
//   - the data segment moves to DataBase + shift with identical contents,
//     and every LUI materialising an address in the original data window
//     is rebased by the shift (the assembler materialises all data
//     addresses through LUI, so this relocates every statically built
//     pointer);
//   - the integer registers X5..X31 and all FP registers are renamed by a
//     seeded permutation (X0..X4 stay fixed: the zero register, RA, SP,
//     GP and TP are architecturally initialised by number).
//
// The rewrite's correctness obligation — the variant computes the same
// function modulo the layout translation — is discharged two ways: the
// returned map is checked with verify.EquivalentVariant (an independent
// structural proof), and the divergent checker's induction check compares
// every canonicalised address, store datum and end checkpoint at run
// time. The pass assumes LUI constants inside the data window denote
// addresses; workload generators only build data pointers that way, and a
// violation shows up immediately as a fault-free divergent mismatch.
func Decorrelate(p *isa.Program, opts DecorrelateOptions) (*Variant, error) {
	span := isa.DataSpan(p)
	shift := opts.DataShiftBytes
	if shift == 0 {
		shift = span + autoShiftPattern
	}
	if shift%4096 != 0 {
		return nil, fmt.Errorf("asm: decorrelate %q: shift %#x not 4KiB-aligned", p.Name, shift)
	}
	if shift < span {
		return nil, fmt.Errorf("asm: decorrelate %q: shift %#x overlaps the %#x-byte data window", p.Name, shift, span)
	}
	// Keep the relocated window clear of the per-hart stack region.
	stackLo := isa.StackBase - uint64(isa.NumIntRegs)*isa.StackStride
	if end := p.DataBase + shift + span; end > stackLo {
		return nil, fmt.Errorf("asm: decorrelate %q: relocated data end %#x reaches the stack region at %#x", p.Name, end, stackLo)
	}

	m := verify.VariantMap{
		DataShift: shift,
		DataLo:    p.DataBase,
		DataHi:    p.DataBase + span,
	}
	rng := opts.RegSeed
	if rng == 0 {
		rng = 1
	}
	for i := range m.XPerm {
		m.XPerm[i] = isa.Reg(i)
	}
	permute(m.XPerm[int(isa.TP)+1:], &rng)
	for i := range m.FPerm {
		m.FPerm[i] = isa.Reg(i)
	}
	permute(m.FPerm[:], &rng)

	insts := make([]isa.Inst, len(p.Insts))
	for pc, in := range p.Insts {
		roles := isa.RolesOf(in.Op)
		in.Rd = remap(&m, roles.Rd, in.Rd)
		in.Rs1 = remap(&m, roles.Rs1, in.Rs1)
		in.Rs2 = remap(&m, roles.Rs2, in.Rs2)
		if in.Op == isa.OpLUI && in.Imm >= 0 &&
			uint64(in.Imm) >= m.DataLo && uint64(in.Imm) < m.DataHi {
			in.Imm += int64(shift)
		}
		insts[pc] = in
	}

	entries := make([]uint64, len(p.Entries))
	copy(entries, p.Entries)
	data := make([]byte, len(p.Data))
	copy(data, p.Data)
	v := &Variant{
		Prog: &isa.Program{
			Name:     p.Name + "+dme",
			Insts:    insts,
			Data:     data,
			DataBase: p.DataBase + shift,
			Entries:  entries,
		},
		Map: m,
	}
	if err := v.Prog.Validate(); err != nil {
		return nil, fmt.Errorf("asm: decorrelate %q: %w", p.Name, err)
	}
	if err := verify.EquivalentVariant(p, v.Prog, &v.Map); err != nil {
		return nil, fmt.Errorf("asm: decorrelate %q: %w", p.Name, err)
	}
	return v, nil
}

func remap(m *verify.VariantMap, role isa.RegRole, r isa.Reg) isa.Reg {
	switch role {
	case isa.RoleInt:
		return m.XPerm[r]
	case isa.RoleFP:
		return m.FPerm[r]
	default:
		return r
	}
}

// permute Fisher-Yates-shuffles regs with a splitmix64 stream, advancing
// *state so successive calls draw independent permutations.
func permute(regs []isa.Reg, state *uint64) {
	for i := len(regs) - 1; i > 0; i-- {
		j := int(splitmix64(state) % uint64(i+1))
		regs[i], regs[j] = regs[j], regs[i]
	}
}

func splitmix64(state *uint64) uint64 {
	*state += 0x9E3779B97F4A7C15
	z := *state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
