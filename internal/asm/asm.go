// Package asm provides a programmatic assembler for building isa.Programs:
// forward and backward labels, immediate materialisation, data-segment
// layout, and per-hart entry points. The GAP graph kernels, PARSEC-style
// parallel kernels and the synthetic SPEC workloads are all written
// against this builder.
package asm

import (
	"encoding/binary"
	"fmt"

	"paraverser/internal/isa"
	"paraverser/internal/isa/verify"
)

// Builder incrementally assembles a program. Methods panic on structural
// misuse (e.g. binding a label twice) — assembly errors are programming
// errors in workload construction, surfaced at Build as a returned error
// where they depend on runtime values (e.g. unresolved labels).
type Builder struct {
	name    string
	insts   []isa.Inst
	data    []byte
	entries []uint64

	labels  map[string]int   // label -> pc
	fixups  map[string][]int // label -> pcs needing patching
	symbols map[string]uint64
	err     error
}

// New returns a Builder for a program with the given name.
func New(name string) *Builder {
	return &Builder{
		name:    name,
		labels:  make(map[string]int),
		fixups:  make(map[string][]int),
		symbols: make(map[string]uint64),
	}
}

// PC returns the current instruction index.
func (b *Builder) PC() int { return len(b.insts) }

// Emit appends a raw instruction.
func (b *Builder) Emit(in isa.Inst) *Builder {
	b.insts = append(b.insts, in)
	return b
}

// Label binds a name to the current PC. Binding the same name twice is an
// error surfaced at Build.
func (b *Builder) Label(name string) *Builder {
	if _, dup := b.labels[name]; dup {
		b.fail("label %q bound twice", name)
		return b
	}
	b.labels[name] = b.PC()
	return b
}

// Entry marks the current PC as a hart entry point and returns its index.
func (b *Builder) Entry() *Builder {
	b.entries = append(b.entries, uint64(b.PC()))
	return b
}

func (b *Builder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf("asm %q: "+format, append([]any{b.name}, args...)...)
	}
}

// --- integer ALU ---

func (b *Builder) op3(op isa.Op, rd, rs1, rs2 isa.Reg) *Builder {
	return b.Emit(isa.Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2})
}

func (b *Builder) opImm(op isa.Op, rd, rs1 isa.Reg, imm int64) *Builder {
	return b.Emit(isa.Inst{Op: op, Rd: rd, Rs1: rs1, Imm: imm})
}

// Add emits rd = rs1 + rs2, and similarly for the other three-register ops.
func (b *Builder) Add(rd, rs1, rs2 isa.Reg) *Builder  { return b.op3(isa.OpADD, rd, rs1, rs2) }
func (b *Builder) Sub(rd, rs1, rs2 isa.Reg) *Builder  { return b.op3(isa.OpSUB, rd, rs1, rs2) }
func (b *Builder) Mul(rd, rs1, rs2 isa.Reg) *Builder  { return b.op3(isa.OpMUL, rd, rs1, rs2) }
func (b *Builder) Div(rd, rs1, rs2 isa.Reg) *Builder  { return b.op3(isa.OpDIV, rd, rs1, rs2) }
func (b *Builder) Rem(rd, rs1, rs2 isa.Reg) *Builder  { return b.op3(isa.OpREM, rd, rs1, rs2) }
func (b *Builder) And(rd, rs1, rs2 isa.Reg) *Builder  { return b.op3(isa.OpAND, rd, rs1, rs2) }
func (b *Builder) Or(rd, rs1, rs2 isa.Reg) *Builder   { return b.op3(isa.OpOR, rd, rs1, rs2) }
func (b *Builder) Xor(rd, rs1, rs2 isa.Reg) *Builder  { return b.op3(isa.OpXOR, rd, rs1, rs2) }
func (b *Builder) Sll(rd, rs1, rs2 isa.Reg) *Builder  { return b.op3(isa.OpSLL, rd, rs1, rs2) }
func (b *Builder) Srl(rd, rs1, rs2 isa.Reg) *Builder  { return b.op3(isa.OpSRL, rd, rs1, rs2) }
func (b *Builder) Sra(rd, rs1, rs2 isa.Reg) *Builder  { return b.op3(isa.OpSRA, rd, rs1, rs2) }
func (b *Builder) Slt(rd, rs1, rs2 isa.Reg) *Builder  { return b.op3(isa.OpSLT, rd, rs1, rs2) }
func (b *Builder) Sltu(rd, rs1, rs2 isa.Reg) *Builder { return b.op3(isa.OpSLTU, rd, rs1, rs2) }

// Addi emits rd = rs1 + imm, and similarly for the other immediate ops.
func (b *Builder) Addi(rd, rs1 isa.Reg, imm int64) *Builder { return b.opImm(isa.OpADDI, rd, rs1, imm) }
func (b *Builder) Andi(rd, rs1 isa.Reg, imm int64) *Builder { return b.opImm(isa.OpANDI, rd, rs1, imm) }
func (b *Builder) Ori(rd, rs1 isa.Reg, imm int64) *Builder  { return b.opImm(isa.OpORI, rd, rs1, imm) }
func (b *Builder) Xori(rd, rs1 isa.Reg, imm int64) *Builder { return b.opImm(isa.OpXORI, rd, rs1, imm) }
func (b *Builder) Slli(rd, rs1 isa.Reg, imm int64) *Builder { return b.opImm(isa.OpSLLI, rd, rs1, imm) }
func (b *Builder) Srli(rd, rs1 isa.Reg, imm int64) *Builder { return b.opImm(isa.OpSRLI, rd, rs1, imm) }
func (b *Builder) Srai(rd, rs1 isa.Reg, imm int64) *Builder { return b.opImm(isa.OpSRAI, rd, rs1, imm) }
func (b *Builder) Slti(rd, rs1 isa.Reg, imm int64) *Builder { return b.opImm(isa.OpSLTI, rd, rs1, imm) }

// Mov emits rd = rs.
func (b *Builder) Mov(rd, rs isa.Reg) *Builder { return b.Addi(rd, rs, 0) }

// Li materialises an arbitrary 64-bit constant into rd using as few
// instructions as possible (ADDI, LUI+ADDI, or a shift-build sequence).
func (b *Builder) Li(rd isa.Reg, v int64) *Builder {
	const immMax, immMin = 1<<23 - 1, -(1 << 23)
	if v >= immMin && v <= immMax {
		return b.Addi(rd, isa.Zero, v)
	}
	// LUI covers a signed 36-bit range (24-bit field << 12).
	if hi := v >> 12; hi >= immMin && hi <= immMax && v >= 0 {
		b.Emit(isa.Inst{Op: isa.OpLUI, Rd: rd, Imm: hi << 12})
		if lo := v & 0xFFF; lo != 0 {
			b.Addi(rd, rd, lo)
		}
		return b
	}
	// General case: build in 16-bit chunks, high to low.
	b.Addi(rd, isa.Zero, (v>>48)&0xFFFF)
	for shift := 32; shift >= 0; shift -= 16 {
		b.Slli(rd, rd, 16)
		if chunk := (v >> shift) & 0xFFFF; chunk != 0 {
			b.Ori(rd, rd, chunk)
		}
	}
	return b
}

// --- floating point ---

func (b *Builder) Fadd(rd, rs1, rs2 isa.Reg) *Builder { return b.op3(isa.OpFADD, rd, rs1, rs2) }
func (b *Builder) Fsub(rd, rs1, rs2 isa.Reg) *Builder { return b.op3(isa.OpFSUB, rd, rs1, rs2) }
func (b *Builder) Fmul(rd, rs1, rs2 isa.Reg) *Builder { return b.op3(isa.OpFMUL, rd, rs1, rs2) }
func (b *Builder) Fdiv(rd, rs1, rs2 isa.Reg) *Builder { return b.op3(isa.OpFDIV, rd, rs1, rs2) }
func (b *Builder) Fsqrt(rd, rs1 isa.Reg) *Builder     { return b.op3(isa.OpFSQRT, rd, rs1, 0) }
func (b *Builder) Fmin(rd, rs1, rs2 isa.Reg) *Builder { return b.op3(isa.OpFMIN, rd, rs1, rs2) }
func (b *Builder) Fmax(rd, rs1, rs2 isa.Reg) *Builder { return b.op3(isa.OpFMAX, rd, rs1, rs2) }
func (b *Builder) Fneg(rd, rs1 isa.Reg) *Builder      { return b.op3(isa.OpFNEG, rd, rs1, 0) }
func (b *Builder) Fabs(rd, rs1 isa.Reg) *Builder      { return b.op3(isa.OpFABS, rd, rs1, 0) }

// Fcvtif emits Fd = float64(Xs1); Fcvtfi emits Xd = int64(Fs1).
func (b *Builder) Fcvtif(fd, xs isa.Reg) *Builder { return b.op3(isa.OpFCVTIF, fd, xs, 0) }
func (b *Builder) Fcvtfi(xd, fs isa.Reg) *Builder { return b.op3(isa.OpFCVTFI, xd, fs, 0) }
func (b *Builder) Fmvif(fd, xs isa.Reg) *Builder  { return b.op3(isa.OpFMVIF, fd, xs, 0) }
func (b *Builder) Fmvfi(xd, fs isa.Reg) *Builder  { return b.op3(isa.OpFMVFI, xd, fs, 0) }
func (b *Builder) Feq(xd, fs1, fs2 isa.Reg) *Builder {
	return b.op3(isa.OpFEQ, xd, fs1, fs2)
}
func (b *Builder) Flt(xd, fs1, fs2 isa.Reg) *Builder {
	return b.op3(isa.OpFLT, xd, fs1, fs2)
}

// --- memory ---

// Ld emits rd = mem[rs1+imm] (size bytes, zero-extended).
func (b *Builder) Ld(size uint8, rd, rs1 isa.Reg, imm int64) *Builder {
	return b.Emit(isa.Inst{Op: isa.OpLD, Rd: rd, Rs1: rs1, Size: size, Imm: imm})
}

// St emits mem[rs1+imm] = rs2 (size bytes).
func (b *Builder) St(size uint8, rs2, rs1 isa.Reg, imm int64) *Builder {
	return b.Emit(isa.Inst{Op: isa.OpST, Rs1: rs1, Rs2: rs2, Size: size, Imm: imm})
}

// Fld emits fd = mem[rs1+imm] (8 bytes); Fst the store counterpart.
func (b *Builder) Fld(fd, rs1 isa.Reg, imm int64) *Builder {
	return b.Emit(isa.Inst{Op: isa.OpFLD, Rd: fd, Rs1: rs1, Size: 8, Imm: imm})
}
func (b *Builder) Fst(fs, rs1 isa.Reg, imm int64) *Builder {
	return b.Emit(isa.Inst{Op: isa.OpFST, Rs1: rs1, Rs2: fs, Size: 8, Imm: imm})
}

// Gld emits rd = mem[rs1+imm] + mem[rs2] (gather-class, two base addresses).
func (b *Builder) Gld(size uint8, rd, rs1, rs2 isa.Reg, imm int64) *Builder {
	return b.Emit(isa.Inst{Op: isa.OpGLD, Rd: rd, Rs1: rs1, Rs2: rs2, Size: size, Imm: imm})
}

// Sst emits mem[rs1+imm] = rd; mem[rs2] = rd (scatter-class).
func (b *Builder) Sst(size uint8, rd, rs1, rs2 isa.Reg, imm int64) *Builder {
	return b.Emit(isa.Inst{Op: isa.OpSST, Rd: rd, Rs1: rs1, Rs2: rs2, Size: size, Imm: imm})
}

// Swp emits rd = mem[rs1]; mem[rs1] = rs2 atomically (8 bytes).
func (b *Builder) Swp(rd, rs1, rs2 isa.Reg) *Builder {
	return b.Emit(isa.Inst{Op: isa.OpSWP, Rd: rd, Rs1: rs1, Rs2: rs2, Size: 8})
}

// --- control flow ---

func (b *Builder) branch(op isa.Op, rs1, rs2 isa.Reg, label string) *Builder {
	pc := b.PC()
	b.Emit(isa.Inst{Op: op, Rs1: rs1, Rs2: rs2})
	b.ref(label, pc)
	return b
}

// ref records that the instruction at pc needs its Imm patched to the
// PC-relative offset of label.
func (b *Builder) ref(label string, pc int) {
	if tgt, ok := b.labels[label]; ok {
		b.insts[pc].Imm = int64(tgt - pc)
		return
	}
	b.fixups[label] = append(b.fixups[label], pc)
}

// Beq branches to label when rs1 == rs2, and similarly for the others.
func (b *Builder) Beq(rs1, rs2 isa.Reg, label string) *Builder {
	return b.branch(isa.OpBEQ, rs1, rs2, label)
}
func (b *Builder) Bne(rs1, rs2 isa.Reg, label string) *Builder {
	return b.branch(isa.OpBNE, rs1, rs2, label)
}
func (b *Builder) Blt(rs1, rs2 isa.Reg, label string) *Builder {
	return b.branch(isa.OpBLT, rs1, rs2, label)
}
func (b *Builder) Bge(rs1, rs2 isa.Reg, label string) *Builder {
	return b.branch(isa.OpBGE, rs1, rs2, label)
}
func (b *Builder) Bltu(rs1, rs2 isa.Reg, label string) *Builder {
	return b.branch(isa.OpBLTU, rs1, rs2, label)
}
func (b *Builder) Bgeu(rs1, rs2 isa.Reg, label string) *Builder {
	return b.branch(isa.OpBGEU, rs1, rs2, label)
}

// Jmp jumps unconditionally to label (JAL with rd = zero).
func (b *Builder) Jmp(label string) *Builder {
	pc := b.PC()
	b.Emit(isa.Inst{Op: isa.OpJAL, Rd: isa.Zero})
	b.ref(label, pc)
	return b
}

// Call jumps to label, recording the return PC in isa.RA.
func (b *Builder) Call(label string) *Builder {
	pc := b.PC()
	b.Emit(isa.Inst{Op: isa.OpJAL, Rd: isa.RA})
	b.ref(label, pc)
	return b
}

// Ret returns to the address in isa.RA.
func (b *Builder) Ret() *Builder {
	return b.Emit(isa.Inst{Op: isa.OpJALR, Rd: isa.Zero, Rs1: isa.RA})
}

// Jalr emits rd = pc+1; pc = rs1 + imm (indirect jump, e.g. jump tables).
func (b *Builder) Jalr(rd, rs1 isa.Reg, imm int64) *Builder {
	return b.Emit(isa.Inst{Op: isa.OpJALR, Rd: rd, Rs1: rs1, Imm: imm})
}

// --- misc ---

func (b *Builder) Rand(rd isa.Reg) *Builder  { return b.Emit(isa.Inst{Op: isa.OpRAND, Rd: rd}) }
func (b *Builder) Cycle(rd isa.Reg) *Builder { return b.Emit(isa.Inst{Op: isa.OpCYCLE, Rd: rd}) }
func (b *Builder) Nop() *Builder             { return b.Emit(isa.Inst{Op: isa.OpNOP}) }
func (b *Builder) Pause() *Builder           { return b.Emit(isa.Inst{Op: isa.OpPAUSE}) }
func (b *Builder) Halt() *Builder            { return b.Emit(isa.Inst{Op: isa.OpHALT}) }

// --- data segment ---

// Word64 appends a 64-bit little-endian value to the data segment and
// returns its byte offset from the data base.
func (b *Builder) Word64(v uint64) uint64 {
	off := uint64(len(b.data))
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	b.data = append(b.data, buf[:]...)
	return off
}

// Float64 appends a float64 to the data segment and returns its offset.
func (b *Builder) Float64(v float64) uint64 {
	return b.Word64(floatBits(v))
}

// Bytes appends raw bytes to the data segment and returns their offset.
func (b *Builder) Bytes(p []byte) uint64 {
	off := uint64(len(b.data))
	b.data = append(b.data, p...)
	return off
}

// Reserve appends n zero bytes to the data segment and returns the offset.
func (b *Builder) Reserve(n int) uint64 {
	off := uint64(len(b.data))
	b.data = append(b.data, make([]byte, n)...)
	return off
}

// SetWord64 overwrites 8 bytes of already-reserved data at off.
func (b *Builder) SetWord64(off uint64, v uint64) *Builder {
	if off+8 > uint64(len(b.data)) {
		b.fail("SetWord64 at %d past data end %d", off, len(b.data))
		return b
	}
	binary.LittleEndian.PutUint64(b.data[off:], v)
	return b
}

// SetFloat64 overwrites 8 bytes of already-reserved data with a float64.
func (b *Builder) SetFloat64(off uint64, v float64) *Builder {
	return b.SetWord64(off, floatBits(v))
}

// DataSlice exposes the data segment from off for direct initialisation
// of reserved regions.
func (b *Builder) DataSlice(off uint64) []byte { return b.data[off:] }

// Align pads the data segment to a multiple of n bytes and returns the new
// length.
func (b *Builder) Align(n int) uint64 {
	for len(b.data)%n != 0 {
		b.data = append(b.data, 0)
	}
	return uint64(len(b.data))
}

// Sym binds a name to a data offset so later code can refer to it.
func (b *Builder) Sym(name string, off uint64) *Builder {
	b.symbols[name] = off
	return b
}

// DataAddr returns the absolute simulated address of a data offset.
func (b *Builder) DataAddr(off uint64) uint64 { return isa.DefaultDataBase + off }

// SymAddr returns the absolute address of a named data symbol.
func (b *Builder) SymAddr(name string) uint64 {
	off, ok := b.symbols[name]
	if !ok {
		b.fail("unknown symbol %q", name)
		return 0
	}
	return b.DataAddr(off)
}

// LiSym materialises the absolute address of a named symbol into rd.
func (b *Builder) LiSym(rd isa.Reg, name string) *Builder {
	return b.Li(rd, int64(b.SymAddr(name)))
}

// Build resolves all labels and returns the validated program.
func (b *Builder) Build() (*isa.Program, error) {
	if b.err != nil {
		return nil, b.err
	}
	for label, pcs := range b.fixups {
		tgt, ok := b.labels[label]
		if !ok {
			//paralint:allow(error path; any unresolved label fails the build identically)
			return nil, fmt.Errorf("asm %q: unresolved label %q", b.name, label)
		}
		for _, pc := range pcs {
			//paralint:allow(each fixup patches a distinct pc; order cannot leak)
			b.insts[pc].Imm = int64(tgt - pc)
		}
	}
	entries := b.entries
	if len(entries) == 0 {
		entries = []uint64{0}
	}
	p := &isa.Program{
		Name:     b.name,
		Insts:    b.insts,
		Data:     b.data,
		DataBase: isa.DefaultDataBase,
		Entries:  entries,
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustBuild is Build for static programs known to be correct; it panics on
// error.
func (b *Builder) MustBuild() *isa.Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}

// BuildVerified is Build followed by the static program verifier
// (internal/isa/verify): control-flow, HALT reachability, register
// use-before-def and statically resolvable memory bounds. Workload
// generators should prefer it so malformed programs fail at assembly
// time instead of as emulation divergence.
func (b *Builder) BuildVerified() (*isa.Program, error) {
	p, err := b.Build()
	if err != nil {
		return nil, err
	}
	if err := verify.Check(p); err != nil {
		return nil, err
	}
	return p, nil
}
