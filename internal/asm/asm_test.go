package asm

import (
	"strings"
	"testing"
	"testing/quick"

	"paraverser/internal/isa"
)

func TestLabelsResolveForwardAndBackward(t *testing.T) {
	b := New("labels")
	b.Label("top")
	b.Addi(5, 5, 1)
	b.Beq(5, 6, "end") // forward reference
	b.Jmp("top")       // backward reference
	b.Label("end")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Insts[1].Imm != 2 {
		t.Errorf("forward branch imm %d, want 2", p.Insts[1].Imm)
	}
	if p.Insts[2].Imm != -2 {
		t.Errorf("backward jump imm %d, want -2", p.Insts[2].Imm)
	}
}

func TestUnresolvedLabelFails(t *testing.T) {
	b := New("bad")
	b.Jmp("nowhere")
	b.Halt()
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "nowhere") {
		t.Errorf("want unresolved-label error, got %v", err)
	}
}

func TestDuplicateLabelFails(t *testing.T) {
	b := New("dup")
	b.Label("x")
	b.Nop()
	b.Label("x")
	b.Halt()
	if _, err := b.Build(); err == nil {
		t.Error("want duplicate-label error")
	}
}

func TestLiEncodesArbitraryConstants(t *testing.T) {
	// Verified through emulation in emu tests; here check instruction
	// counts stay small and immediates in range for Encode.
	cases := []int64{0, 1, -1, 4095, 4096, -4096, 1 << 20, -(1 << 22), 1 << 33, -(1 << 40), 0x7FFFFFFFFFFFFFFF}
	for _, v := range cases {
		b := New("li")
		b.Li(5, v)
		b.Halt()
		p, err := b.Build()
		if err != nil {
			t.Fatalf("Li(%d): %v", v, err)
		}
		if len(p.Insts) > 9 {
			t.Errorf("Li(%d) used %d instructions", v, len(p.Insts))
		}
		if _, err := isa.EncodeProgram(p); err != nil {
			t.Errorf("Li(%d) emitted unencodable instructions: %v", v, err)
		}
	}
}

func TestLiQuickAllValuesEncodable(t *testing.T) {
	f := func(v int64) bool {
		b := New("q")
		b.Li(6, v)
		b.Halt()
		p, err := b.Build()
		if err != nil {
			return false
		}
		_, err = isa.EncodeProgram(p)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDataSegmentHelpers(t *testing.T) {
	b := New("data")
	o1 := b.Word64(0x1122334455667788)
	o2 := b.Float64(3.5)
	o3 := b.Bytes([]byte{1, 2, 3})
	al := b.Align(8)
	o4 := b.Reserve(16)
	b.SetWord64(o4, 42)
	b.SetFloat64(o4+8, 1.25)
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if o1 != 0 || o2 != 8 || o3 != 16 {
		t.Errorf("offsets %d %d %d", o1, o2, o3)
	}
	if al%8 != 0 {
		t.Errorf("align returned %d", al)
	}
	if p.Data[o3] != 1 || p.Data[o3+2] != 3 {
		t.Error("bytes not written")
	}
	if p.Data[o4] != 42 {
		t.Error("SetWord64 not applied")
	}
}

func TestSetWord64OutOfRangeFails(t *testing.T) {
	b := New("oob")
	b.Reserve(8)
	b.SetWord64(4, 1) // straddles the end
	b.Halt()
	if _, err := b.Build(); err == nil {
		t.Error("want out-of-range error")
	}
}

func TestSymbols(t *testing.T) {
	b := New("sym")
	off := b.Word64(7)
	b.Sym("seven", off)
	b.LiSym(5, "seven")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.NumInsts() < 2 {
		t.Error("LiSym emitted nothing")
	}

	bad := New("badsym")
	bad.LiSym(5, "missing")
	bad.Halt()
	if _, err := bad.Build(); err == nil {
		t.Error("want unknown-symbol error")
	}
}

func TestEntriesDefaultToZero(t *testing.T) {
	b := New("e")
	b.Halt()
	p := b.MustBuild()
	if len(p.Entries) != 1 || p.Entries[0] != 0 {
		t.Errorf("entries = %v, want [0]", p.Entries)
	}

	b2 := New("e2")
	b2.Entry()
	b2.Halt()
	b2.Entry()
	b2.Halt()
	p2 := b2.MustBuild()
	if len(p2.Entries) != 2 || p2.Entries[1] != 1 {
		t.Errorf("entries = %v, want [0 1]", p2.Entries)
	}
}

func TestCallRetPair(t *testing.T) {
	b := New("cr")
	b.Call("fn")
	b.Halt()
	b.Label("fn")
	b.Ret()
	p := b.MustBuild()
	if p.Insts[0].Op != isa.OpJAL || p.Insts[0].Rd != isa.RA {
		t.Error("Call is not JAL ra")
	}
	if p.Insts[2].Op != isa.OpJALR || p.Insts[2].Rs1 != isa.RA {
		t.Error("Ret is not JALR via ra")
	}
}

func TestMustBuildPanicsOnError(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustBuild did not panic on invalid program")
		}
	}()
	b := New("panic")
	b.Jmp("missing")
	b.MustBuild()
}
