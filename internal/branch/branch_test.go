package branch

import (
	"math/rand"
	"testing"

	"paraverser/internal/isa"
)

func TestBimodalLearnsBias(t *testing.T) {
	b := NewBimodal(10)
	pc := uint64(0x40)
	for i := 0; i < 10; i++ {
		b.Update(pc, true)
	}
	if !b.Predict(pc) {
		t.Error("bimodal failed to learn always-taken")
	}
	for i := 0; i < 10; i++ {
		b.Update(pc, false)
	}
	if b.Predict(pc) {
		t.Error("bimodal failed to relearn always-not-taken")
	}
}

func TestCounterSaturates(t *testing.T) {
	c := counter(0)
	for i := 0; i < 10; i++ {
		c = c.train(true)
	}
	if c != 3 {
		t.Errorf("counter = %d, want 3", c)
	}
	for i := 0; i < 10; i++ {
		c = c.train(false)
	}
	if c != 0 {
		t.Errorf("counter = %d, want 0", c)
	}
}

// runPattern feeds a repeating direction pattern and returns the accuracy
// over the last half (after warmup).
func runPattern(p Predictor, pattern []bool, iters int) float64 {
	pc := uint64(0x1234)
	correct, total := 0, 0
	for i := 0; i < iters; i++ {
		taken := pattern[i%len(pattern)]
		pred := p.Predict(pc)
		if i > iters/2 {
			total++
			if pred == taken {
				correct++
			}
		}
		p.Update(pc, taken)
	}
	return float64(correct) / float64(total)
}

func TestTAGELearnsLoopPattern(t *testing.T) {
	// A loop branch: taken 15 times, not-taken once. TAGE should exceed
	// 95% accuracy; bimodal alone sits near 15/16.
	pattern := make([]bool, 16)
	for i := range pattern {
		pattern[i] = i != 15
	}
	acc := runPattern(NewDefaultTAGE(), pattern, 4000)
	if acc < 0.95 {
		t.Errorf("TAGE loop accuracy %.3f, want >= 0.95", acc)
	}
}

func TestTAGELearnsAlternating(t *testing.T) {
	acc := runPattern(NewDefaultTAGE(), []bool{true, false}, 2000)
	if acc < 0.98 {
		t.Errorf("TAGE alternating accuracy %.3f, want >= 0.98", acc)
	}
}

func TestTAGERandomIsHard(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pattern := make([]bool, 4001) // odd length, random content
	for i := range pattern {
		pattern[i] = rng.Intn(2) == 0
	}
	acc := runPattern(NewDefaultTAGE(), pattern, 4000)
	if acc > 0.75 {
		t.Errorf("TAGE random accuracy %.3f suspiciously high", acc)
	}
}

func TestSmallTAGEWorseThanBigOnLongPattern(t *testing.T) {
	// A long loop needs long history; the small predictor should do no
	// better than the big one.
	pattern := make([]bool, 48)
	for i := range pattern {
		pattern[i] = i != 47
	}
	big := runPattern(NewDefaultTAGE(), pattern, 8000)
	small := runPattern(NewSmallTAGE(), pattern, 8000)
	if small > big+0.02 {
		t.Errorf("small TAGE (%.3f) beats big (%.3f) on long pattern", small, big)
	}
}

func TestBTB(t *testing.T) {
	b := NewBTB(8)
	if _, ok := b.Lookup(0x100); ok {
		t.Error("empty BTB hit")
	}
	b.Update(0x100, 0x200)
	tgt, ok := b.Lookup(0x100)
	if !ok || tgt != 0x200 {
		t.Errorf("BTB lookup = %#x, %v; want 0x200, true", tgt, ok)
	}
	// PC 0 must work despite the zero-means-empty encoding.
	b.Update(0, 0x300)
	if tgt, ok := b.Lookup(0); !ok || tgt != 0x300 {
		t.Error("BTB fails for pc 0")
	}
}

func TestUnitResolveTracksStats(t *testing.T) {
	u := NewUnit(NewBimodal(10), 8)
	// First resolve of a taken branch: direction unknown (counter weak
	// not-taken) -> mispredict.
	u.Resolve(isa.OpBEQ, 0x40, true, 0x80)
	if u.Stats.Lookups != 1 || u.Stats.Mispredicts != 1 {
		t.Errorf("stats %+v after first taken branch", u.Stats)
	}
	// Train until predicted taken, with BTB target now known.
	for i := 0; i < 5; i++ {
		u.Resolve(isa.OpBEQ, 0x40, true, 0x80)
	}
	before := u.Stats.Mispredicts
	u.Resolve(isa.OpBEQ, 0x40, true, 0x80)
	if u.Stats.Mispredicts != before {
		t.Error("trained branch still mispredicting")
	}
}

func TestUnitIndirectTargetChange(t *testing.T) {
	u := NewUnit(NewBimodal(10), 8)
	u.Resolve(isa.OpJALR, 0x40, true, 0x100) // cold: miss
	if !u.Resolve(isa.OpJALR, 0x40, true, 0x100) {
		t.Error("repeated indirect target should predict")
	}
	if u.Resolve(isa.OpJALR, 0x40, true, 0x180) {
		t.Error("changed indirect target should mispredict")
	}
}

func TestUnitDirectJumpPredictsAfterFirst(t *testing.T) {
	u := NewUnit(NewBimodal(10), 8)
	if u.Resolve(isa.OpJAL, 0x40, true, 0x90) {
		t.Error("cold direct jump should miss BTB")
	}
	if !u.Resolve(isa.OpJAL, 0x40, true, 0x90) {
		t.Error("warm direct jump should hit")
	}
}

func TestMispredictRate(t *testing.T) {
	s := Stats{}
	if s.MispredictRate() != 0 {
		t.Error("empty stats rate != 0")
	}
	s.Lookups, s.Mispredicts = 100, 7
	if got := s.MispredictRate(); got != 0.07 {
		t.Errorf("rate = %v, want 0.07", got)
	}
}
