// Package branch implements the branch predictors used by the core timing
// models: a bimodal predictor for tiny cores and a TAGE-lite predictor
// (tagged geometric history lengths) standing in for the MPP-TAGE
// predictors in the paper's Table I, plus a branch target buffer.
package branch

import "paraverser/internal/isa"

// Predictor predicts conditional branch directions and learns from
// outcomes.
type Predictor interface {
	// Predict returns the predicted direction for the branch at pc.
	Predict(pc uint64) bool
	// Update trains the predictor with the actual outcome.
	Update(pc uint64, taken bool)
}

// counter is a 2-bit saturating counter.
type counter uint8

func (c counter) taken() bool { return c >= 2 }

func (c counter) train(taken bool) counter {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}

// Bimodal is a simple PC-indexed table of 2-bit counters.
type Bimodal struct {
	table []counter
	mask  uint64
}

var _ Predictor = (*Bimodal)(nil)

// NewBimodal returns a bimodal predictor with 2^logSize entries.
func NewBimodal(logSize uint) *Bimodal {
	n := uint64(1) << logSize
	return &Bimodal{table: make([]counter, n), mask: n - 1}
}

// Predict implements Predictor.
func (b *Bimodal) Predict(pc uint64) bool { return b.table[pc&b.mask].taken() }

// Update implements Predictor.
func (b *Bimodal) Update(pc uint64, taken bool) {
	i := pc & b.mask
	b.table[i] = b.table[i].train(taken)
}

// tageEntry is one tagged component entry.
type tageEntry struct {
	tag    uint16
	ctr    counter
	useful uint8
}

// TAGE is a TAGE-lite predictor: a bimodal base plus N tagged components
// indexed by geometrically increasing global-history lengths. It captures
// the behaviour that matters for the paper's workloads: loop branches and
// short correlated patterns predict nearly perfectly, data-dependent
// branches (deepsjeng, leela) mispredict often.
type TAGE struct {
	base    *Bimodal
	comps   [][]tageEntry
	hlens   []uint
	mask    uint64
	history uint64
}

var _ Predictor = (*TAGE)(nil)

// NewTAGE returns a TAGE-lite predictor. logSize sizes each tagged
// component at 2^logSize entries; histLens gives the global-history bits
// used by each component, shortest first.
func NewTAGE(logSize uint, histLens []uint) *TAGE {
	n := uint64(1) << logSize
	t := &TAGE{
		base:  NewBimodal(logSize + 1),
		hlens: histLens,
		mask:  n - 1,
	}
	t.comps = make([][]tageEntry, len(histLens))
	for i := range t.comps {
		t.comps[i] = make([]tageEntry, n)
	}
	return t
}

// NewDefaultTAGE returns the configuration used for big cores (a stand-in
// for the 64KiB MPP-TAGE of the Cortex-X2 model).
func NewDefaultTAGE() *TAGE { return NewTAGE(13, []uint{4, 8, 16, 32, 64}) }

// NewSmallTAGE returns the configuration used for little cores (8KiB).
func NewSmallTAGE() *TAGE { return NewTAGE(9, []uint{4, 8, 16}) }

func (t *TAGE) index(pc uint64, comp int) uint64 {
	h := t.history & (1<<t.hlens[comp] - 1)
	// Fold history into the index with a couple of xor-shifts.
	h ^= h >> 17
	h ^= h >> 7
	return (pc ^ h ^ uint64(comp)*0x9E3779B9) & t.mask
}

func (t *TAGE) tag(pc uint64, comp int) uint16 {
	h := t.history & (1<<t.hlens[comp] - 1)
	return uint16((pc>>2 ^ h ^ h>>11 ^ uint64(comp)<<5) & 0x3FF)
}

// lookup finds the longest-history matching component, returning its
// index or -1 for a base prediction.
func (t *TAGE) lookup(pc uint64) (comp int, idx uint64) {
	for c := len(t.comps) - 1; c >= 0; c-- {
		i := t.index(pc, c)
		if t.comps[c][i].tag == t.tag(pc, c) {
			return c, i
		}
	}
	return -1, 0
}

// Predict implements Predictor.
func (t *TAGE) Predict(pc uint64) bool {
	if c, i := t.lookup(pc); c >= 0 {
		return t.comps[c][i].ctr.taken()
	}
	return t.base.Predict(pc)
}

// Update implements Predictor.
func (t *TAGE) Update(pc uint64, taken bool) {
	comp, idx := t.lookup(pc)
	var predicted bool
	if comp >= 0 {
		e := &t.comps[comp][idx]
		predicted = e.ctr.taken()
		e.ctr = e.ctr.train(taken)
		if predicted == taken && e.useful < 3 {
			e.useful++
		}
	} else {
		predicted = t.base.Predict(pc)
		t.base.Update(pc, taken)
	}

	// On a misprediction, try to allocate in a longer-history component.
	if predicted != taken {
		for c := comp + 1; c < len(t.comps); c++ {
			i := t.index(pc, c)
			e := &t.comps[c][i]
			if e.useful == 0 {
				*e = tageEntry{tag: t.tag(pc, c), ctr: initCtr(taken)}
				break
			}
			e.useful--
		}
	}

	t.history = t.history<<1 | boolBit(taken)
}

func initCtr(taken bool) counter {
	if taken {
		return 2
	}
	return 1
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// BTB is a direct-mapped branch target buffer. Indirect jumps (JALR) whose
// targets change mispredict; direct branches and returns hit after first
// use.
type BTB struct {
	tags    []uint64
	targets []uint64
	mask    uint64
}

// NewBTB returns a BTB with 2^logSize entries.
func NewBTB(logSize uint) *BTB {
	n := uint64(1) << logSize
	return &BTB{tags: make([]uint64, n), targets: make([]uint64, n), mask: n - 1}
}

// Lookup returns the predicted target and whether the entry was present.
func (b *BTB) Lookup(pc uint64) (uint64, bool) {
	i := pc & b.mask
	if b.tags[i] == pc+1 { // +1 so the zero tag means empty
		return b.targets[i], true
	}
	return 0, false
}

// Update records the actual target for pc.
func (b *BTB) Update(pc, target uint64) {
	i := pc & b.mask
	b.tags[i] = pc + 1
	b.targets[i] = target
}

// Stats accumulates prediction accuracy for reporting.
type Stats struct {
	Lookups     uint64
	Mispredicts uint64
}

// MispredictRate returns the fraction of lookups that mispredicted.
func (s *Stats) MispredictRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Mispredicts) / float64(s.Lookups)
}

// Unit bundles a direction predictor and a BTB, and exposes the single
// call the timing model makes per control-flow instruction: was this
// branch or jump predicted correctly?
type Unit struct {
	Dir   Predictor
	BTB   *BTB
	Stats Stats
}

// NewUnit returns a branch unit around the given direction predictor.
func NewUnit(dir Predictor, btbLog uint) *Unit {
	return &Unit{Dir: dir, BTB: NewBTB(btbLog)}
}

// Resolve predicts and then trains on the branch at pc with actual
// direction taken and target. It returns true when the prediction
// (direction and, when taken, target) was correct.
func (u *Unit) Resolve(op isa.Op, pc uint64, taken bool, target uint64) bool {
	u.Stats.Lookups++
	correct := true
	switch isa.ClassOf(op) {
	case isa.ClassBranch:
		predTaken := u.Dir.Predict(pc)
		u.Dir.Update(pc, taken)
		if predTaken != taken {
			correct = false
		} else if taken {
			t, ok := u.BTB.Lookup(pc)
			correct = ok && t == target
		}
		u.BTB.Update(pc, target)
	case isa.ClassJump:
		if op == isa.OpJAL {
			// Direct jumps predict perfectly after the first sighting.
			_, ok := u.BTB.Lookup(pc)
			correct = ok
		} else {
			t, ok := u.BTB.Lookup(pc)
			correct = ok && t == target
		}
		u.BTB.Update(pc, target)
	default:
		return true
	}
	if !correct {
		u.Stats.Mispredicts++
	}
	return correct
}
