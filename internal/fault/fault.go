//paralint:deterministic

// Package fault implements the hard- and soft-error injection of
// section VII-B, following the standard model of Li et al. [53]: a
// single-bit stuck-at fault on the output of one functional unit
// (activated only when that unit executes the instruction), a stuck-at
// fault on load/store addresses (an LSQ fault), or a transient single-bit
// flip. Faults are injected on the checker core so the main run is
// undisturbed; detection is symmetrical (section V).
package fault

import (
	"fmt"
	"math/rand"

	"paraverser/internal/emu"
	"paraverser/internal/isa"
)

// Kind is the fault type.
type Kind uint8

// Fault kinds. Enums start at one.
const (
	KindInvalid Kind = iota
	// StuckAt0 forces one output bit to 0 whenever the faulty unit is
	// used.
	StuckAt0
	// StuckAt1 forces one output bit to 1.
	StuckAt1
	// Transient flips one bit exactly once (a soft error).
	Transient
	// StuckAddr is a stuck physical address bit on the shared memory
	// path, downstream of the core's AGU: accesses whose intended bit
	// differs from the stuck level are silently served from the aliased
	// location. The logged (AGU-computed) address is correct and the
	// returned data is consistent across identical replays, so lockstep
	// checking cannot see it; a layout-shifted divergent lane maps the
	// bit differently and diverges.
	StuckAddr
	// DRAMRow is a stuck cell bit confined to one DRAM row: loads from
	// that row read the bit at the stuck level, idempotently. Like
	// StuckAddr, the corruption is invisible to identical replay but
	// lands on different program data under a shifted layout.
	DRAMRow

	// numKinds is the exhaustiveness sentinel for tests; keep it last.
	numKinds
)

func (k Kind) String() string {
	switch k {
	case StuckAt0:
		return "stuck-at-0"
	case StuckAt1:
		return "stuck-at-1"
	case Transient:
		return "transient"
	case StuckAddr:
		return "stuck-addr"
	case DRAMRow:
		return "dram-row"
	default:
		return "invalid"
	}
}

// Fault describes one injected hardware fault.
type Fault struct {
	Kind Kind
	// Class is the functional-unit class the fault lives in; ignored
	// when LSQ is set.
	Class isa.Class
	// Unit selects which instance of the class's units is faulty; an
	// instruction only activates the fault when it is steered to this
	// unit ("errors may not be injected depending on which unit is
	// used").
	Unit int
	// Units is the pool size for unit steering.
	Units int
	// Bit is the output bit affected.
	Bit uint
	// LSQ injects into load/store effective addresses instead of a
	// functional unit.
	LSQ bool
	// TransientAt is the activation ordinal at which a Transient fault
	// fires.
	TransientAt uint64
	// Stuck1 selects the stuck level: for StuckAddr the level of the
	// stuck address bit, for DRAMRow the level of the stuck cell bit.
	Stuck1 bool
	// RowShift and Row locate a DRAMRow fault: addresses with
	// addr>>RowShift == Row hit the faulty row.
	RowShift uint
	Row      uint64
}

// CommonMode reports whether the fault lives on the shared memory path
// (rather than in one core): it afflicts whatever lane's accesses reach
// the faulty structure, so the campaign injects it on the main core's
// memory traffic instead of a checker.
func (f Fault) CommonMode() bool { return f.Kind == StuckAddr || f.Kind == DRAMRow }

func (f Fault) String() string {
	switch f.Kind {
	case StuckAddr:
		return fmt.Sprintf("%s bit %d stuck at %d", f.Kind, f.Bit, b2i(f.Stuck1))
	case DRAMRow:
		return fmt.Sprintf("%s row %#x cell bit %d stuck at %d", f.Kind, f.Row, f.Bit, b2i(f.Stuck1))
	}
	where := fmt.Sprintf("class %d unit %d/%d", f.Class, f.Unit, f.Units)
	if f.LSQ {
		where = "lsq address"
	}
	return fmt.Sprintf("%s bit %d on %s", f.Kind, f.Bit, where)
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// Validate checks the descriptor.
func (f Fault) Validate() error {
	if f.Kind == KindInvalid || f.Kind >= numKinds {
		return fmt.Errorf("fault: invalid kind %d", f.Kind)
	}
	if f.Bit > 63 {
		return fmt.Errorf("fault: bit %d out of range", f.Bit)
	}
	switch f.Kind {
	case StuckAddr:
		// Below the page offset every layout maps the bit identically, so
		// the fault would be structurally undetectable even in divergent
		// mode; keep descriptors honest about what they model.
		if f.Bit < 12 {
			return fmt.Errorf("fault: stuck-addr bit %d below the page offset", f.Bit)
		}
	case DRAMRow:
		if f.RowShift < 6 || f.RowShift > 30 {
			return fmt.Errorf("fault: dram-row shift %d outside [6, 30]", f.RowShift)
		}
	default:
		if !f.LSQ {
			if f.Units <= 0 || f.Unit < 0 || f.Unit >= f.Units {
				return fmt.Errorf("fault: unit %d/%d invalid", f.Unit, f.Units)
			}
		}
	}
	return nil
}

// Injector applies one fault as an emu.Interceptor.
type Injector struct {
	F Fault

	// Fires counts times the faulty unit was exercised; Activations
	// counts times the value actually changed (unmasked at the circuit
	// level). The difference is circuit-level masking, one component of
	// the paper's 24% masked injections.
	Fires       uint64
	Activations uint64

	steer uint64 // deterministic unit-steering state
}

var _ emu.Interceptor = (*Injector)(nil)

// NewInjector validates and wraps a fault.
func NewInjector(f Fault) (*Injector, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return &Injector{F: f}, nil
}

// steerUnit deterministically picks which unit instance executes this
// operation (a stand-in for issue-port selection).
func (in *Injector) steerUnit() int {
	in.steer = in.steer*6364136223846793005 + 1442695040888963407
	return int((in.steer >> 33) % uint64(in.F.Units))
}

func (in *Injector) apply(v uint64) uint64 {
	in.Fires++
	if in.F.Kind == Transient && in.Fires != in.F.TransientAt {
		return v
	}
	var corrupted uint64
	switch in.F.Kind {
	case StuckAt0:
		corrupted = v &^ (1 << in.F.Bit)
	case StuckAt1:
		corrupted = v | 1<<in.F.Bit
	case Transient:
		corrupted = v ^ 1<<in.F.Bit
	default:
		return v
	}
	if corrupted != v {
		in.Activations++
	}
	return corrupted
}

// classMatches maps execution classes onto the faulty unit's class,
// merging the classes that share silicon.
func (in *Injector) classMatches(class isa.Class) bool {
	return class == in.F.Class
}

// Result implements emu.Interceptor.
func (in *Injector) Result(_ isa.Inst, class isa.Class, _ bool, v uint64) uint64 {
	if in.F.CommonMode() || in.F.LSQ || !in.classMatches(class) {
		return v
	}
	if in.steerUnit() != in.F.Unit {
		return v
	}
	return in.apply(v)
}

// Address implements emu.Interceptor.
func (in *Injector) Address(_ isa.Inst, addr uint64) uint64 {
	if in.F.CommonMode() || !in.F.LSQ {
		return addr
	}
	return in.apply(addr)
}

var _ emu.DataInterceptor = (*Injector)(nil)

// loadSize is the architectural width of a load's result.
func loadSize(inst isa.Inst) uint8 {
	if inst.Op == isa.OpFLD || inst.Op == isa.OpSWP {
		return 8
	}
	if inst.Size == 0 {
		return 8
	}
	return inst.Size
}

func truncSize(v uint64, size uint8) uint64 {
	if size >= 8 {
		return v
	}
	return v & (1<<(8*size) - 1)
}

// mix64 is a splitmix64 finalizer: the deterministic stand-in for the
// contents of an aliased memory location the simulator never modelled.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	return x ^ x>>31
}

// LoadData implements emu.DataInterceptor: the shared-memory-path fault
// kinds corrupt what a load returns, after the environment access but
// before the value is logged — the logged address stays the intended
// one, so identical replay re-reads the identical corruption and the
// fault escapes lockstep checking.
func (in *Injector) LoadData(inst isa.Inst, addr uint64, v uint64) uint64 {
	switch in.F.Kind {
	case StuckAddr:
		bit := uint64(1) << in.F.Bit
		level := uint64(0)
		if in.F.Stuck1 {
			level = bit
		}
		if addr&bit == level {
			return v // the intended address maps to itself
		}
		in.Fires++
		// The access is served from the aliased location; its content is
		// modelled as a deterministic function of that location,
		// truncated to the access width, so repeated reads agree.
		corrupted := truncSize(mix64((addr&^bit)|level), loadSize(inst))
		if corrupted != v {
			in.Activations++
		}
		return corrupted
	case DRAMRow:
		if addr>>in.F.RowShift != in.F.Row {
			return v
		}
		in.Fires++
		var corrupted uint64
		if in.F.Stuck1 {
			corrupted = v | 1<<in.F.Bit
		} else {
			corrupted = v &^ (1 << in.F.Bit)
		}
		// A cell bit beyond the access width never reaches the core:
		// circuit-level masking.
		corrupted = truncSize(corrupted, loadSize(inst))
		if corrupted != v {
			in.Activations++
		}
		return corrupted
	}
	return v
}

// Campaign generates n random hard faults over the functional units of a
// core, mirroring the paper's injection targets: integer ALUs, FPUs, and
// load/store addresses.
func Campaign(seed int64, n int, fuCounts map[isa.Class]int) []Fault {
	rng := rand.New(rand.NewSource(seed))
	classes := []isa.Class{
		isa.ClassIntALU, isa.ClassIntMul, isa.ClassIntDiv,
		isa.ClassFPAdd, isa.ClassFPMul, isa.ClassFPDiv,
	}
	faults := make([]Fault, 0, n)
	for i := 0; i < n; i++ {
		f := Fault{Bit: uint(rng.Intn(64))}
		if rng.Intn(2) == 0 {
			f.Kind = StuckAt1
		} else {
			f.Kind = StuckAt0
		}
		if rng.Intn(5) == 0 { // some campaigns target the LSQ
			f.LSQ = true
			// Keep address faults in the low bits so they stay inside
			// mapped data and perturb behaviour rather than vanishing
			// into unmapped space.
			f.Bit = uint(rng.Intn(16))
		} else {
			class := classes[rng.Intn(len(classes))]
			units := fuCounts[class]
			if units <= 0 {
				units = 1
			}
			f.Class = class
			f.Units = units
			f.Unit = rng.Intn(units)
		}
		faults = append(faults, f)
	}
	return faults
}

// Outcome classifies one injection experiment.
type Outcome uint8

// Outcomes. Enums start at one.
const (
	OutcomeInvalid Outcome = iota
	// Detected: the checker raised a mismatch.
	Detected
	// Masked: the fault fired but never changed an architectural value,
	// or changed values that never reached a logged store, address or
	// register checkpoint — correct behaviour, nothing to report.
	Masked
	// Dormant: the faulty unit was never exercised by the workload.
	Dormant
	// UndetectedSDC: the fault changed a value (an unmasked activation)
	// yet no check flagged it within the horizon — the corruption could
	// have escaped as silent data corruption through an unchecked
	// window or an uncompared path.
	UndetectedSDC
)

func (o Outcome) String() string {
	switch o {
	case Detected:
		return "detected"
	case Masked:
		return "masked"
	case Dormant:
		return "dormant"
	case UndetectedSDC:
		return "undetected-sdc"
	default:
		return "invalid"
	}
}

// Classify derives the outcome from an injector's counters and the
// detection flag.
func Classify(in *Injector, detected bool) Outcome {
	switch {
	case detected:
		return Detected
	case in.Fires == 0:
		return Dormant
	default:
		return Masked
	}
}

// ClassifySDC refines Classify with the silent-data-corruption split the
// campaign engine reports: an activation that changed a value but was
// never detected is a potential undetected SDC, while a fault that fired
// without ever flipping an output bit was masked at the circuit level.
func ClassifySDC(in *Injector, detected bool) Outcome {
	switch {
	case detected:
		return Detected
	case in.Fires == 0:
		return Dormant
	case in.Activations == 0:
		return Masked
	default:
		return UndetectedSDC
	}
}
