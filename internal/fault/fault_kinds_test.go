package fault

import (
	"math/rand"
	"testing"

	"paraverser/internal/isa"
)

// TestKindExhaustive guards the kind enum: every declared kind renders a
// real name and is reachable from RandomFault under a mix that enables
// every category. Adding a kind without wiring it into both trips here.
func TestKindExhaustive(t *testing.T) {
	for k := KindInvalid + 1; k < numKinds; k++ {
		if k.String() == "invalid" {
			t.Errorf("kind %d has no String case", k)
		}
	}
	if KindInvalid.String() != "invalid" || numKinds.String() != "invalid" {
		t.Error("sentinel kinds must render as invalid")
	}

	mix := FaultMix{Transient: 0.25, LSQ: 0.2, StuckAddr: 0.15, DRAMRow: 0.15}
	fu := map[isa.Class]int{isa.ClassIntALU: 4, isa.ClassFPAdd: 2}
	rng := rand.New(rand.NewSource(1))
	seen := make(map[Kind]bool)
	for i := 0; i < 4096; i++ {
		f := RandomFault(rng, fu, mix, isa.DefaultDataBase, 64<<10)
		if err := f.Validate(); err != nil {
			t.Fatalf("draw %d: invalid fault %v: %v", i, f, err)
		}
		seen[f.Kind] = true
	}
	for k := KindInvalid + 1; k < numKinds; k++ {
		if !seen[k] {
			t.Errorf("kind %v never drawn by RandomFault", k)
		}
	}
}

func TestMixValidation(t *testing.T) {
	bad := []FaultMix{
		{Transient: -0.1},
		{LSQ: 1.5},
		{StuckAddr: -1},
		{DRAMRow: 2},
		{Transient: 0.5, LSQ: 0.3, StuckAddr: 0.2, DRAMRow: 0.1}, // sums to 1.1
	}
	for _, m := range bad {
		cfg := CampaignConfig{Mix: &m}
		if err := cfg.Normalize(); err == nil {
			t.Errorf("mix %+v accepted", m)
		}
	}

	// nil Mix defaults; explicit zero mix is legal and stays zero.
	cfg := CampaignConfig{}
	if err := cfg.Normalize(); err != nil {
		t.Fatal(err)
	}
	if *cfg.Mix != DefaultMix() {
		t.Errorf("nil mix normalized to %+v, want DefaultMix", *cfg.Mix)
	}
	zero := FaultMix{}
	cfg = CampaignConfig{Mix: &zero}
	if err := cfg.Normalize(); err != nil {
		t.Fatal(err)
	}
	if *cfg.Mix != (FaultMix{}) {
		t.Errorf("explicit zero mix rewritten to %+v", *cfg.Mix)
	}
}

// TestStuckAddrLoadData pins the stuck-address model: accesses whose bit
// already sits at the stuck level pass through untouched; aliased
// accesses return wrong but idempotent data, and the logged address is
// never altered (that is what lets the fault escape identical replay).
func TestStuckAddrLoadData(t *testing.T) {
	inj, err := NewInjector(Fault{Kind: StuckAddr, Bit: 13, Stuck1: false})
	if err != nil {
		t.Fatal(err)
	}
	ld := isa.Inst{Op: isa.OpLD, Size: 8}

	clean := uint64(isa.DefaultDataBase) // bit 13 clear: maps to itself
	if got := inj.LoadData(ld, clean, 42); got != 42 {
		t.Errorf("unaliased load corrupted: %#x", got)
	}
	if inj.Fires != 0 {
		t.Errorf("unaliased load fired the fault")
	}

	aliased := uint64(isa.DefaultDataBase) | 1<<13
	a := inj.LoadData(ld, aliased, 42)
	b := inj.LoadData(ld, aliased, 42)
	if a == 42 {
		t.Error("aliased load returned the true value")
	}
	if a != b {
		t.Errorf("stuck-addr corruption not idempotent: %#x vs %#x", a, b)
	}
	if inj.Fires != 2 || inj.Activations != 2 {
		t.Errorf("fires=%d activations=%d, want 2/2", inj.Fires, inj.Activations)
	}
	if got := inj.Address(ld, aliased); got != aliased {
		t.Errorf("stuck-addr fault rewrote the logged address: %#x", got)
	}

	// Narrow loads see the corruption truncated to their width.
	narrow := inj.LoadData(isa.Inst{Op: isa.OpLD, Size: 1}, aliased, 0x7)
	if narrow > 0xFF {
		t.Errorf("1-byte load returned %#x", narrow)
	}
}

// TestDRAMRowLoadData pins the row-fault model: only the faulty row is
// affected, corruption is the idempotent stuck cell bit, and a cell bit
// beyond the access width is masked at the circuit level.
func TestDRAMRowLoadData(t *testing.T) {
	row := uint64(isa.DefaultDataBase) >> 12
	inj, err := NewInjector(Fault{Kind: DRAMRow, RowShift: 12, Row: row, Bit: 3, Stuck1: true})
	if err != nil {
		t.Fatal(err)
	}
	ld := isa.Inst{Op: isa.OpLD, Size: 8}

	other := (row + 1) << 12
	if got := inj.LoadData(ld, other, 0); got != 0 || inj.Fires != 0 {
		t.Errorf("off-row load touched: v=%#x fires=%d", got, inj.Fires)
	}

	hit := row << 12
	if got := inj.LoadData(ld, hit, 0); got != 1<<3 {
		t.Errorf("stuck-at-1 cell read %#x, want %#x", got, 1<<3)
	}
	// Value already holding the stuck level: fires but masked.
	pre := inj.Activations
	if got := inj.LoadData(ld, hit, 1<<3); got != 1<<3 {
		t.Errorf("idempotence broken: %#x", got)
	}
	if inj.Activations != pre {
		t.Error("masked read counted as activation")
	}

	// A cell bit beyond the access width never reaches the core.
	wide, err := NewInjector(Fault{Kind: DRAMRow, RowShift: 12, Row: row, Bit: 40, Stuck1: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := wide.LoadData(isa.Inst{Op: isa.OpLD, Size: 2}, hit, 0x1234); got != 0x1234 {
		t.Errorf("out-of-width cell bit visible: %#x", got)
	}
	if wide.Fires != 1 || wide.Activations != 0 {
		t.Errorf("fires=%d activations=%d, want 1/0", wide.Fires, wide.Activations)
	}
}

func TestCommonModeValidation(t *testing.T) {
	if err := (Fault{Kind: StuckAddr, Bit: 5}).Validate(); err == nil {
		t.Error("stuck-addr bit below page offset accepted")
	}
	if err := (Fault{Kind: DRAMRow, RowShift: 40, Row: 1}).Validate(); err == nil {
		t.Error("dram-row shift 40 accepted")
	}
	if !(Fault{Kind: StuckAddr, Bit: 13}).CommonMode() || !(Fault{Kind: DRAMRow, RowShift: 12}).CommonMode() {
		t.Error("memory-path kinds not common-mode")
	}
	if (Fault{Kind: Transient, Units: 1}).CommonMode() {
		t.Error("transient marked common-mode")
	}
}
