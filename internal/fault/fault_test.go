package fault

import (
	"testing"

	"paraverser/internal/isa"
)

func TestInjectorStuckAt(t *testing.T) {
	in, err := NewInjector(Fault{Kind: StuckAt1, Class: isa.ClassIntALU, Units: 1, Bit: 4})
	if err != nil {
		t.Fatal(err)
	}
	got := in.Result(isa.Inst{}, isa.ClassIntALU, false, 0)
	if got != 1<<4 {
		t.Errorf("stuck-at-1 result %#x, want bit 4 set", got)
	}
	if in.Fires != 1 || in.Activations != 1 {
		t.Errorf("counters %d/%d, want 1/1", in.Fires, in.Activations)
	}
	// Already-set bit: fires but does not activate (circuit masking).
	in.Result(isa.Inst{}, isa.ClassIntALU, false, 1<<4)
	if in.Fires != 2 || in.Activations != 1 {
		t.Errorf("masked fire miscounted: %d/%d", in.Fires, in.Activations)
	}

	in0, _ := NewInjector(Fault{Kind: StuckAt0, Class: isa.ClassIntALU, Units: 1, Bit: 0})
	if got := in0.Result(isa.Inst{}, isa.ClassIntALU, false, 0xFF); got != 0xFE {
		t.Errorf("stuck-at-0 result %#x, want 0xFE", got)
	}
}

func TestInjectorClassSelective(t *testing.T) {
	in, _ := NewInjector(Fault{Kind: StuckAt1, Class: isa.ClassFPDiv, Units: 1, Bit: 0})
	if got := in.Result(isa.Inst{}, isa.ClassIntALU, false, 0); got != 0 {
		t.Error("fault fired on wrong class")
	}
	if in.Fires != 0 {
		t.Error("wrong-class access counted as fire")
	}
}

func TestInjectorUnitSteering(t *testing.T) {
	// With 4 units, roughly a quarter of operations hit the faulty one.
	in, _ := NewInjector(Fault{Kind: StuckAt1, Class: isa.ClassIntALU, Unit: 2, Units: 4, Bit: 0})
	const n = 10000
	for i := 0; i < n; i++ {
		in.Result(isa.Inst{}, isa.ClassIntALU, false, 0)
	}
	frac := float64(in.Fires) / n
	if frac < 0.15 || frac > 0.35 {
		t.Errorf("unit-2-of-4 fire fraction %.3f, want ~0.25", frac)
	}
}

func TestTransientFiresOnce(t *testing.T) {
	in, _ := NewInjector(Fault{Kind: Transient, Class: isa.ClassIntALU, Units: 1, Bit: 7, TransientAt: 3})
	var changed int
	for i := 0; i < 10; i++ {
		if in.Result(isa.Inst{}, isa.ClassIntALU, false, 0) != 0 {
			changed++
		}
	}
	if changed != 1 {
		t.Errorf("transient changed %d results, want exactly 1", changed)
	}
	if in.Activations != 1 {
		t.Errorf("activations %d, want 1", in.Activations)
	}
}

func TestInjectorLSQAddress(t *testing.T) {
	in, _ := NewInjector(Fault{Kind: StuckAt1, LSQ: true, Bit: 3})
	if got := in.Address(isa.Inst{}, 0x1000); got != 0x1008 {
		t.Errorf("address fault %#x, want 0x1008", got)
	}
	// LSQ faults must not touch results.
	if got := in.Result(isa.Inst{}, isa.ClassIntALU, false, 5); got != 5 {
		t.Error("LSQ fault corrupted a result")
	}
	// And FU faults must not touch addresses.
	fu, _ := NewInjector(Fault{Kind: StuckAt1, Class: isa.ClassIntALU, Units: 1, Bit: 3})
	if got := fu.Address(isa.Inst{}, 0x1000); got != 0x1000 {
		t.Error("FU fault corrupted an address")
	}
}

func TestValidate(t *testing.T) {
	bad := []Fault{
		{},
		{Kind: StuckAt1, Bit: 99, Units: 1},
		{Kind: StuckAt1, Bit: 1, Units: 0},
		{Kind: StuckAt1, Bit: 1, Unit: 3, Units: 2},
	}
	for i, f := range bad {
		if err := f.Validate(); err == nil {
			t.Errorf("case %d: want validation error", i)
		}
	}
	if _, err := NewInjector(Fault{}); err == nil {
		t.Error("NewInjector accepted invalid fault")
	}
}

func TestCampaignShape(t *testing.T) {
	fu := map[isa.Class]int{
		isa.ClassIntALU: 4, isa.ClassIntMul: 2, isa.ClassIntDiv: 1,
		isa.ClassFPAdd: 4, isa.ClassFPMul: 4, isa.ClassFPDiv: 2,
	}
	faults := Campaign(7, 200, fu)
	if len(faults) != 200 {
		t.Fatalf("campaign size %d", len(faults))
	}
	var lsq int
	for i, f := range faults {
		if err := f.Validate(); err != nil && !f.LSQ {
			t.Errorf("fault %d invalid: %v", i, err)
		}
		if f.LSQ {
			lsq++
			if f.Bit > 15 {
				t.Errorf("LSQ fault bit %d too high", f.Bit)
			}
		}
	}
	if lsq == 0 || lsq == 200 {
		t.Errorf("campaign has %d LSQ faults, want a minority mix", lsq)
	}
	// Determinism: same seed, same campaign.
	again := Campaign(7, 200, fu)
	for i := range faults {
		if faults[i] != again[i] {
			t.Fatal("campaign not deterministic")
		}
	}
}

func TestClassify(t *testing.T) {
	in := &Injector{}
	if got := Classify(in, false); got != Dormant {
		t.Errorf("no fires = %v, want dormant", got)
	}
	in.Fires = 5
	if got := Classify(in, false); got != Masked {
		t.Errorf("fires without detection = %v, want masked", got)
	}
	if got := Classify(in, true); got != Detected {
		t.Errorf("detection = %v, want detected", got)
	}
}
