// Campaign engine: fleet-scale randomized fault-injection trials
// (stuck-at FU / LSQ-address / transient × workloads × checker configs)
// fanned out across goroutines with deterministic per-trial seeds. Each
// trial runs a full ParaVerser system with the closed-loop recovery
// layer live, and the aggregate reports detection-latency distributions,
// the masked/detected/undetected-SDC split, and quarantine/recovery
// statistics — the SDC-campaign methodology ITHICA and RepTFD apply at
// data-center scale.
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"paraverser/internal/core"
	"paraverser/internal/emu"
	"paraverser/internal/isa"
	"paraverser/internal/obs"
	"paraverser/internal/stats"
)

// CampaignConfig parameterises one injection campaign. Workload
// programs and config templates are shared read-only across concurrent
// trials; every trial copies its Config value and builds a private
// injector.
type CampaignConfig struct {
	// Seed is the campaign base seed; trial i derives its own seed from
	// it, so the same base seed reproduces the identical verdict table
	// regardless of Workers.
	Seed int64
	// Trials is the number of randomized injection trials.
	Trials int
	// Workers bounds concurrent trials (0 = GOMAXPROCS).
	Workers int
	// Workloads are the programs trials sample from.
	Workloads []core.Workload
	// Configs are the checker-system templates trials sample from; each
	// must have a checker pool. Recovery is forced on.
	Configs []core.Config
	// Mix sets the fault-type fractions. A nil Mix selects DefaultMix;
	// a non-nil Mix is used exactly as given (an explicit zero fraction
	// genuinely disables that fault type), so defaulting is unambiguous.
	Mix *FaultMix
}

// FaultMix is the categorical fault-type distribution one campaign draws
// from. Each field is the fraction of trials injecting that type; the
// remainder (1 - sum) are stuck-at faults on functional-unit outputs.
type FaultMix struct {
	// Transient: a one-shot bit flip on a functional-unit output.
	Transient float64
	// LSQ: a stuck-at bit on load/store effective addresses.
	LSQ float64
	// StuckAddr: a stuck address bit on the shared memory path
	// (common-mode; injected on the main core's traffic).
	StuckAddr float64
	// DRAMRow: a stuck cell bit in one DRAM row (common-mode).
	DRAMRow float64
}

// DefaultMix is the fault-type distribution campaigns use when none is
// given.
func DefaultMix() FaultMix {
	return FaultMix{Transient: 0.25, LSQ: 0.20, StuckAddr: 0.05, DRAMRow: 0.05}
}

// Validate rejects fractions outside [0, 1] or summing past 1, which
// would silently skew RandomFault's categorical draw.
func (m *FaultMix) Validate() error {
	fracs := []struct {
		name string
		v    float64
	}{
		{"Transient", m.Transient},
		{"LSQ", m.LSQ},
		{"StuckAddr", m.StuckAddr},
		{"DRAMRow", m.DRAMRow},
	}
	sum := 0.0
	for _, f := range fracs {
		if f.v < 0 || f.v > 1 {
			return fmt.Errorf("fault: mix fraction %s = %v outside [0, 1]", f.name, f.v)
		}
		sum += f.v
	}
	if sum > 1 {
		return fmt.Errorf("fault: mix fractions sum to %v > 1", sum)
	}
	return nil
}

// Normalize validates the campaign's fault-type mix and fills the
// remaining defaults in place. A nil Mix becomes DefaultMix; an explicit
// Mix must pass FaultMix.Validate.
func (c *CampaignConfig) Normalize() error {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Mix == nil {
		m := DefaultMix()
		c.Mix = &m
	}
	return c.Mix.Validate()
}

// Validate checks the campaign parameters.
func (c *CampaignConfig) Validate() error {
	if c.Trials <= 0 {
		return fmt.Errorf("fault: campaign needs trials > 0")
	}
	if len(c.Workloads) == 0 {
		return fmt.Errorf("fault: campaign needs workloads")
	}
	if len(c.Configs) == 0 {
		return fmt.Errorf("fault: campaign needs system configs")
	}
	for i := range c.Configs {
		if len(c.Configs[i].Checkers) == 0 {
			return fmt.Errorf("fault: campaign config %d has no checker pool", i)
		}
	}
	return nil
}

// Trial is one generated injection experiment.
type Trial struct {
	Index int
	// Seed drives both the trial generation and the system's
	// non-repeatable instruction streams.
	Seed int64
	// Fault is the injected fault; CheckerID the checker core it lives
	// on (per lane).
	Fault     Fault
	CheckerID int
	// Workload and Config index into the campaign's pools.
	Workload int
	Config   int
}

// TrialResult is one finished trial.
type TrialResult struct {
	Trial
	// WorkloadName labels the sampled program.
	WorkloadName string
	// Outcome is the masked/detected/undetected-SDC classification.
	Outcome Outcome
	// DetectionInst is the main-core instruction count at first
	// detection (-1 when undetected) — the latency metric.
	DetectionInst int64
	// Fires and Activations are the injector's counters.
	Fires, Activations uint64
	// Detections counts flagged segments across lanes.
	Detections int
	// Verdict is the recovery pipeline's forensic classification of the
	// first detection (DiagnosisInvalid when nothing was detected).
	Verdict core.Diagnosis
	// Recovery aggregates the trial's recovery-pipeline activity.
	Recovery core.RecoveryStats
	// Quarantined and Retired report the faulty checker's final
	// standing; DegradedNS the graceful-degradation window.
	Quarantined bool
	Retired     bool
	DegradedNS  float64
	// Metrics is the trial run's observability shard (core.Result.Metrics).
	Metrics *obs.RunMetrics
}

// CampaignResult aggregates a finished campaign. Trials are ordered by
// index, so equal seeds yield byte-identical tables.
type CampaignResult struct {
	Trials []TrialResult
}

// RunCampaign generates cfg.Trials randomized faults and runs each in
// its own ParaVerser system, fanning trials out over cfg.Workers
// goroutines. Trial seeds derive deterministically from cfg.Seed, and
// results slot into a fixed order, so the outcome is independent of
// scheduling.
func RunCampaign(cfg CampaignConfig) (*CampaignResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Normalize(); err != nil {
		return nil, err
	}

	trials := make([]Trial, cfg.Trials)
	for i := range trials {
		trials[i] = genTrial(&cfg, i)
	}

	results := make([]TrialResult, len(trials))
	errs := make([]error, len(trials))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i], errs[i] = runTrial(&cfg, trials[i])
			}
		}()
	}
	for i := range trials {
		idx <- i
	}
	close(idx)
	wg.Wait()

	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return &CampaignResult{Trials: results}, nil
}

// trialSeed spreads the base seed across trials with a splitmix-style
// step so neighbouring trials decorrelate.
func trialSeed(base int64, i int) int64 {
	x := uint64(base) + uint64(i+1)*0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	return int64(x)
}

func genTrial(cfg *CampaignConfig, i int) Trial {
	t := Trial{Index: i, Seed: trialSeed(cfg.Seed, i)}
	rng := rand.New(rand.NewSource(t.Seed))
	t.Config = rng.Intn(len(cfg.Configs))
	t.Workload = rng.Intn(len(cfg.Workloads))
	pool := 0
	for _, spec := range cfg.Configs[t.Config].Checkers {
		pool += spec.Count
	}
	t.CheckerID = rng.Intn(pool)
	fu := make(map[isa.Class]int)
	for class, p := range cfg.Configs[t.Config].Checkers[0].CPU.FUs {
		fu[class] = p.Count
	}
	prog := cfg.Workloads[t.Workload].Prog
	t.Fault = RandomFault(rng, fu, *cfg.Mix, prog.DataBase, isa.DataSpan(prog))
	return t
}

// RandomFault draws one fault from the campaign mix: the categorical
// fractions of mix select transient, LSQ-address, stuck-address-bit or
// DRAM-row faults; the remainder are stuck-at faults on functional-unit
// outputs. dataBase and dataSpan locate the sampled program's data
// segment so memory-path faults land on rows the workload actually
// touches.
func RandomFault(rng *rand.Rand, fuCounts map[isa.Class]int, mix FaultMix, dataBase, dataSpan uint64) Fault {
	r := rng.Float64()
	switch {
	case r < mix.StuckAddr:
		return Fault{
			Kind: StuckAddr,
			// Bits 12–20: above the page offset, so a page-aligned layout
			// shift maps the bit differently between lanes, and low
			// enough that the alias stays near mapped memory.
			Bit:    12 + uint(rng.Intn(9)),
			Stuck1: rng.Intn(2) == 0,
		}
	case r < mix.StuckAddr+mix.DRAMRow:
		const rowShift = 12
		span := dataSpan
		if span == 0 {
			span = 1
		}
		return Fault{
			Kind:     DRAMRow,
			RowShift: rowShift,
			Row:      (dataBase + uint64(rng.Int63n(int64(span)))) >> rowShift,
			Bit:      uint(rng.Intn(64)),
			Stuck1:   rng.Intn(2) == 0,
		}
	case r < mix.StuckAddr+mix.DRAMRow+mix.Transient:
		f := Fault{
			Kind: Transient,
			Bit:  uint(rng.Intn(64)),
			// Fire on an early-ish exercise of the unit so the flip lands
			// inside the detection horizon.
			TransientAt: 1 + uint64(rng.Intn(200)),
		}
		f.Class, f.Units, f.Unit = randomFU(rng, fuCounts)
		return f
	case r < mix.StuckAddr+mix.DRAMRow+mix.Transient+mix.LSQ:
		f := Fault{LSQ: true}
		if rng.Intn(2) == 0 {
			f.Kind = StuckAt1
		} else {
			f.Kind = StuckAt0
		}
		// Keep address faults in the low bits so they stay inside mapped
		// data and perturb behaviour rather than vanishing into unmapped
		// space.
		f.Bit = uint(rng.Intn(16))
		return f
	}
	f := Fault{Bit: uint(rng.Intn(64))}
	if rng.Intn(2) == 0 {
		f.Kind = StuckAt1
	} else {
		f.Kind = StuckAt0
	}
	f.Class, f.Units, f.Unit = randomFU(rng, fuCounts)
	return f
}

// randomFU picks a functional-unit class and unit instance
// deterministically (map iteration order is randomized; sort first).
func randomFU(rng *rand.Rand, fuCounts map[isa.Class]int) (isa.Class, int, int) {
	classes := make([]isa.Class, 0, len(fuCounts))
	for class := range fuCounts {
		classes = append(classes, class)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })
	class := classes[rng.Intn(len(classes))]
	units := fuCounts[class]
	if units <= 0 {
		units = 1
	}
	return class, units, rng.Intn(units)
}

func runTrial(cfg *CampaignConfig, t Trial) (TrialResult, error) {
	out := TrialResult{
		Trial:         t,
		WorkloadName:  cfg.Workloads[t.Workload].Name,
		DetectionInst: -1,
	}
	sys := cfg.Configs[t.Config] // private copy of the template
	if !sys.Recovery.Enabled {
		sys.Recovery = core.DefaultRecovery()
	}
	sys.Seed = uint64(t.Seed)
	inj, err := NewInjector(t.Fault)
	if err != nil {
		return out, fmt.Errorf("fault: trial %d: %w", t.Index, err)
	}
	if t.Fault.CommonMode() {
		// Shared-memory-path faults afflict the main core's traffic; a
		// lockstep checker replays the identical corruption and cannot
		// see it, a divergent checker's shifted layout can.
		sys.MainInterceptor = func(int) emu.Interceptor { return inj }
	} else {
		sys.CheckerInterceptor = func(_, ckID int) emu.Interceptor {
			if ckID == t.CheckerID {
				return inj
			}
			return nil
		}
	}

	res, err := core.Run(sys, []core.Workload{cfg.Workloads[t.Workload]})
	if err != nil {
		return out, fmt.Errorf("fault: trial %d (%s on %s): %w",
			t.Index, t.Fault, out.WorkloadName, err)
	}

	for i := range res.Lanes {
		lane := &res.Lanes[i]
		out.Detections += lane.Detections
		if lane.FirstDetectionInst >= 0 &&
			(out.DetectionInst < 0 || lane.FirstDetectionInst < out.DetectionInst) {
			out.DetectionInst = lane.FirstDetectionInst
		}
		if out.Verdict == core.DiagnosisInvalid && len(lane.SampleRecoveries) > 0 {
			out.Verdict = lane.SampleRecoveries[0].Verdict
		}
	}
	out.Recovery = res.Recovery()
	out.DegradedNS = res.DegradedNS()
	for _, cks := range res.CheckersByLane {
		for _, ck := range cks {
			if ck.ID != t.CheckerID {
				continue
			}
			switch ck.State {
			case core.CheckerQuarantined, core.CheckerProbation:
				out.Quarantined = true
			case core.CheckerRetired:
				out.Quarantined = true
				out.Retired = true
			}
		}
	}
	out.Fires, out.Activations = inj.Fires, inj.Activations
	out.Outcome = ClassifySDC(inj, out.Detections > 0)
	out.Metrics = res.Metrics
	return out, nil
}

// Latencies returns the detection latencies (in main-core instructions)
// of the detected trials, in trial order.
func (r *CampaignResult) Latencies() []float64 {
	var out []float64
	for i := range r.Trials {
		if r.Trials[i].Outcome == Detected && r.Trials[i].DetectionInst >= 0 {
			out = append(out, float64(r.Trials[i].DetectionInst))
		}
	}
	return out
}

// Outcomes tallies trials per outcome.
func (r *CampaignResult) Outcomes() map[Outcome]int {
	out := make(map[Outcome]int)
	for i := range r.Trials {
		out[r.Trials[i].Outcome]++
	}
	return out
}

// RunMetrics merges every trial's observability shard in trial order.
// Trial seeds and results are scheduling-independent and shard merging
// is commutative integer addition, so the aggregate is byte-identical
// at any Workers setting.
func (r *CampaignResult) RunMetrics() *obs.RunMetrics {
	m := obs.NewRunMetrics()
	for i := range r.Trials {
		m.Merge(r.Trials[i].Metrics)
	}
	return m
}

// Recovery sums recovery-pipeline stats over trials.
func (r *CampaignResult) Recovery() core.RecoveryStats {
	var st core.RecoveryStats
	for i := range r.Trials {
		st.Add(r.Trials[i].Recovery)
	}
	return st
}

// Table renders the campaign summary: the outcome split, the
// detection-latency distribution in instructions, and the
// quarantine/recovery statistics.
func (r *CampaignResult) Table() string {
	n := len(r.Trials)
	counts := r.Outcomes()
	pct := func(c int) string {
		if n == 0 {
			return "0.0%"
		}
		return fmt.Sprintf("%.1f%%", 100*float64(c)/float64(n))
	}
	t := stats.NewTable("metric", "value", "share")
	t.Row("trials", n, "")
	for _, o := range []Outcome{Detected, Masked, Dormant, UndetectedSDC} {
		t.Row(o.String(), counts[o], pct(counts[o]))
	}

	lat := r.Latencies()
	if len(lat) > 0 {
		t.Row("latency p50 (insts)", fmt.Sprintf("%.0f", stats.Percentile(lat, 50)), "")
		t.Row("latency p95 (insts)", fmt.Sprintf("%.0f", stats.Percentile(lat, 95)), "")
		t.Row("latency p99 (insts)", fmt.Sprintf("%.0f", stats.Percentile(lat, 99)), "")
	}

	st := r.Recovery()
	quarantined, retired := 0, 0
	var degradedNS float64
	for i := range r.Trials {
		if r.Trials[i].Quarantined {
			quarantined++
		}
		if r.Trials[i].Retired {
			retired++
		}
		degradedNS += r.Trials[i].DegradedNS
	}
	t.Row("recovery events", st.Events, "")
	t.Row("re-replays", st.Retries, "")
	t.Row("re-verified clean", st.ReplayedClean, "")
	t.Row("verdict checker-persistent", st.CheckerPersistent, "")
	t.Row("verdict checker-intermittent", st.CheckerIntermittent, "")
	t.Row("verdict main-suspected", st.MainSuspected, "")
	t.Row("verdict not-reproduced", st.Unreproduced, "")
	t.Row("trials with quarantine", quarantined, pct(quarantined))
	t.Row("trials with retirement", retired, pct(retired))
	t.Row("probation shadow checks", st.ProbationChecks, "")
	t.Row("probation readmissions", st.Readmissions, "")
	t.Row("degraded-coverage time (µs)", fmt.Sprintf("%.1f", degradedNS/1e3), "")
	return t.String()
}

// TrialTable renders the per-trial verdict table.
func (r *CampaignResult) TrialTable() string {
	t := stats.NewTable("trial", "fault", "workload", "ck", "outcome", "latency", "verdict", "pool")
	for i := range r.Trials {
		tr := &r.Trials[i]
		lat := "-"
		if tr.DetectionInst >= 0 {
			lat = fmt.Sprintf("%d", tr.DetectionInst)
		}
		verdict := "-"
		if tr.Verdict != core.DiagnosisInvalid {
			verdict = tr.Verdict.String()
		}
		pool := "intact"
		switch {
		case tr.Retired:
			pool = "retired"
		case tr.Quarantined:
			pool = "quarantined"
		}
		t.Row(tr.Index, tr.Fault.String(), tr.WorkloadName, tr.CheckerID,
			tr.Outcome.String(), lat, verdict, pool)
	}
	return t.String()
}
