package fault

import (
	"runtime"
	"strings"
	"testing"

	"paraverser/internal/asm"
	"paraverser/internal/core"
	"paraverser/internal/cpu"
	"paraverser/internal/emu"
	"paraverser/internal/isa"
	"paraverser/internal/obs"
)

// campaignProgram is a small FP/integer/memory mix that exercises the
// injected functional units.
func campaignProgram(iters int64) *isa.Program {
	b := asm.New("campaign")
	buf := b.Reserve(16 << 10)
	b.Li(5, int64(isa.DefaultDataBase+buf))
	b.Li(20, 0)
	b.Li(21, iters)
	b.Label("loop")
	b.Andi(6, 20, 16<<10/8-1)
	b.Slli(6, 6, 3)
	b.Add(7, 5, 6)
	b.Ld(8, 8, 7, 0)
	b.Addi(8, 8, 7)
	b.St(8, 8, 7, 0)
	b.Fcvtif(1, 8)
	b.Fmul(2, 1, 1)
	b.Addi(20, 20, 1)
	b.Blt(20, 21, "loop")
	b.Halt()
	return b.MustBuild()
}

func campaignConfig(trials, workers int) CampaignConfig {
	full := core.DefaultConfig(core.CheckerSpec{CPU: cpu.A510(), FreqGHz: 2.0, Count: 3})
	full.Recovery = core.DefaultRecovery()
	opp := core.DefaultConfig(core.CheckerSpec{CPU: cpu.A510(), FreqGHz: 2.0, Count: 2})
	opp.Mode = core.ModeOpportunistic
	opp.Recovery = core.DefaultRecovery()
	return CampaignConfig{
		Seed:    2025,
		Trials:  trials,
		Workers: workers,
		Workloads: []core.Workload{
			{Name: "campaign-a", Prog: campaignProgram(6000)},
			{Name: "campaign-b", Prog: campaignProgram(9000)},
		},
		Configs: []core.Config{full, opp},
	}
}

func TestCampaignValidation(t *testing.T) {
	cfg := campaignConfig(0, 1)
	if _, err := RunCampaign(cfg); err == nil {
		t.Error("zero trials accepted")
	}
	cfg = campaignConfig(1, 1)
	cfg.Workloads = nil
	if _, err := RunCampaign(cfg); err == nil {
		t.Error("no workloads accepted")
	}
	cfg = campaignConfig(1, 1)
	cfg.Configs = []core.Config{core.DefaultConfig()} // no checkers
	if _, err := RunCampaign(cfg); err == nil {
		t.Error("checkerless config accepted")
	}
}

// TestCampaignDeterministicAcrossWorkers is the end-to-end seed
// contract: the same base seed must reproduce byte-identical verdict
// tables and merged run metrics no matter how the trials are
// scheduled — serial vs one worker per CPU, with a shared trace ring
// attached on the parallel side to prove observability never perturbs
// outcomes. Run under -race this doubles as the data-race check on the
// metric shards.
func TestCampaignDeterministicAcrossWorkers(t *testing.T) {
	serial, err := RunCampaign(campaignConfig(8, 1))
	if err != nil {
		t.Fatal(err)
	}
	par := campaignConfig(8, runtime.NumCPU())
	ring := obs.NewTrace(1 << 12)
	for i := range par.Configs {
		par.Configs[i].Trace = ring
	}
	parallel, err := RunCampaign(par)
	if err != nil {
		t.Fatal(err)
	}
	if serial.TrialTable() != parallel.TrialTable() {
		t.Errorf("trial tables diverge across worker counts:\n%s\nvs\n%s",
			serial.TrialTable(), parallel.TrialTable())
	}
	if serial.Table() != parallel.Table() {
		t.Error("summary tables diverge across worker counts")
	}
	if sm, pm := serial.RunMetrics().String(), parallel.RunMetrics().String(); sm != pm {
		t.Errorf("campaign metrics diverge across worker counts:\n%s\nvs\n%s", sm, pm)
	}
	if segs, _ := ring.Count(obs.CatSegment); segs == 0 {
		t.Error("traced campaign emitted no segment events")
	}

	// A different seed must actually change the draw.
	other := campaignConfig(8, 4)
	other.Seed = 77
	reseeded, err := RunCampaign(other)
	if err != nil {
		t.Fatal(err)
	}
	if reseeded.TrialTable() == serial.TrialTable() {
		t.Error("different seeds produced identical campaigns")
	}
}

// TestCampaignOutcomesAndRecovery sanity-checks the aggregate: a
// persistent-fault-heavy campaign must detect some faults, quarantine
// implicated checkers, and report a coherent latency distribution.
func TestCampaignOutcomesAndRecovery(t *testing.T) {
	cfg := campaignConfig(12, 4)
	// Persistent-fault-heavy: explicit zeros disable the common-mode
	// kinds (which lockstep configs cannot detect) rather than falling
	// back to DefaultMix.
	cfg.Mix = &FaultMix{Transient: 0.1, LSQ: 0.2}
	res, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trials) != 12 {
		t.Fatalf("%d trial results, want 12", len(res.Trials))
	}
	counts := res.Outcomes()
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 12 {
		t.Errorf("outcome tally %d, want 12", total)
	}
	if counts[Detected] == 0 {
		t.Error("campaign detected nothing")
	}
	st := res.Recovery()
	if st.Events == 0 {
		t.Error("no recovery events despite detections")
	}
	quarantined := 0
	for i := range res.Trials {
		tr := &res.Trials[i]
		if tr.Outcome == Detected && tr.DetectionInst < 0 {
			t.Errorf("trial %d detected without a latency", tr.Index)
		}
		if tr.Quarantined {
			quarantined++
		}
		if tr.Outcome == Detected && tr.Verdict == core.DiagnosisInvalid {
			t.Errorf("trial %d detected without a forensic verdict", tr.Index)
		}
	}
	if quarantined == 0 {
		t.Error("no trial quarantined its faulty checker")
	}
	if lat := res.Latencies(); len(lat) != counts[Detected] {
		t.Errorf("%d latencies for %d detected trials", len(lat), counts[Detected])
	}
	table := res.Table()
	for _, want := range []string{"detected", "undetected-sdc", "trials with quarantine", "latency p99"} {
		if !strings.Contains(table, want) {
			t.Errorf("summary table missing %q:\n%s", want, table)
		}
	}
}

func TestClassifySDC(t *testing.T) {
	cases := []struct {
		fires, acts uint64
		detected    bool
		want        Outcome
	}{
		{0, 0, false, Dormant},
		{5, 0, false, Masked},
		{5, 3, false, UndetectedSDC},
		{5, 3, true, Detected},
	}
	for _, c := range cases {
		in := &Injector{Fires: c.fires, Activations: c.acts}
		if got := ClassifySDC(in, c.detected); got != c.want {
			t.Errorf("ClassifySDC(fires=%d, acts=%d, det=%v) = %v, want %v",
				c.fires, c.acts, c.detected, got, c.want)
		}
	}
}

// divergentCampaignConfig mirrors campaignConfig with a single
// divergent-mode system and a mix weighted toward the common-mode
// memory-path faults divergent checking exists to catch.
func divergentCampaignConfig(trials, workers int) CampaignConfig {
	div := core.DefaultConfig(core.CheckerSpec{CPU: cpu.A510(), FreqGHz: 2.0, Count: 3})
	div.Recovery = core.DefaultRecovery()
	div.CheckMode = core.CheckDivergent
	return CampaignConfig{
		Seed:    2025,
		Trials:  trials,
		Workers: workers,
		Workloads: []core.Workload{
			{Name: "campaign-a", Prog: campaignProgram(6000)},
			{Name: "campaign-b", Prog: campaignProgram(9000)},
		},
		Configs: []core.Config{div},
		Mix:     &FaultMix{Transient: 0.15, LSQ: 0.15, StuckAddr: 0.25, DRAMRow: 0.25},
	}
}

// TestDivergentCampaignDeterministicAcrossWorkers extends the
// worker-count determinism contract to divergent mode: the
// canonicalized-trace comparison must produce byte-identical verdict
// tables and merged metrics whether trials run serially or one per CPU.
// Under -race this doubles as the data-race check on the divergent
// check path.
func TestDivergentCampaignDeterministicAcrossWorkers(t *testing.T) {
	serial, err := RunCampaign(divergentCampaignConfig(8, 1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunCampaign(divergentCampaignConfig(8, runtime.NumCPU()))
	if err != nil {
		t.Fatal(err)
	}
	if serial.TrialTable() != parallel.TrialTable() {
		t.Errorf("divergent trial tables diverge across worker counts:\n%s\nvs\n%s",
			serial.TrialTable(), parallel.TrialTable())
	}
	if serial.Table() != parallel.Table() {
		t.Error("divergent summary tables diverge across worker counts")
	}
	if sm, pm := serial.RunMetrics().String(), parallel.RunMetrics().String(); sm != pm {
		t.Errorf("divergent campaign metrics diverge across worker counts:\n%s\nvs\n%s", sm, pm)
	}
	if serial.RunMetrics().SegmentsCheckedDivergent == 0 {
		t.Error("divergent campaign never took the divergent check path")
	}
}

// TestDivergentDetectsCommonModeEscape is the acceptance demonstration
// of the DME tentpole: a stuck address bit on the main core's memory
// path escapes lockstep checking as an undetected SDC (the checker
// replays the identical corruption from the log), while the divergent
// configuration's private canonical image contradicts the corrupted
// load data and detects it.
func TestDivergentDetectsCommonModeEscape(t *testing.T) {
	fault := Fault{Kind: StuckAddr, Bit: 13}
	ws := []core.Workload{{Name: "campaign-a", Prog: campaignProgram(6000)}}

	run := func(mode core.CheckMode) (*core.Result, *Injector) {
		inj, err := NewInjector(fault)
		if err != nil {
			t.Fatal(err)
		}
		cfg := core.DefaultConfig(core.CheckerSpec{CPU: cpu.A510(), FreqGHz: 2.0, Count: 3})
		cfg.Recovery = core.DefaultRecovery()
		cfg.CheckMode = mode
		cfg.MainInterceptor = func(int) emu.Interceptor { return inj }
		res, err := core.Run(cfg, ws)
		if err != nil {
			t.Fatal(err)
		}
		return res, inj
	}

	lockRes, lockInj := run(core.CheckLockstep)
	if lockInj.Activations == 0 {
		t.Fatal("stuck-addr fault never activated; the workload does not exercise bit 13")
	}
	if d := lockRes.Lanes[0].Detections; d != 0 {
		t.Fatalf("lockstep detected a common-mode main-path fault (%d detections); the escape premise is broken", d)
	}
	if got := ClassifySDC(lockInj, false); got != UndetectedSDC {
		t.Fatalf("lockstep outcome %v, want undetected-sdc", got)
	}

	divRes, divInj := run(core.CheckDivergent)
	if divInj.Activations == 0 {
		t.Fatal("fault inactive under the divergent run")
	}
	if divRes.Lanes[0].Detections == 0 {
		t.Fatal("divergent checking missed the common-mode fault lockstep escaped")
	}
	if divRes.Metrics.DivergentDataMismatches == 0 {
		t.Error("detection did not come from the private-image cross-check")
	}
	if got := ClassifySDC(divInj, true); got != Detected {
		t.Fatalf("divergent outcome %v, want detected", got)
	}
}
