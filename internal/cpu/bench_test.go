package cpu

import (
	"testing"

	"paraverser/internal/asm"
	"paraverser/internal/emu"
)

// benchEffects captures the effect stream of a mixed loop (strided
// loads/stores, ALU, FP, a data-dependent branch) so the timing model
// can be driven without re-running the emulator.
func benchEffects(tb testing.TB, n int64) []emu.Effect {
	const bufWords = 4096
	b := asm.New("bench-mix")
	buf := b.Reserve(bufWords * 8)
	b.Li(5, int64(b.DataAddr(buf)))
	b.Li(20, 0)
	b.Li(21, n)
	b.Li(22, 0)
	b.Label("loop")
	b.Andi(6, 20, bufWords-1)
	b.Slli(6, 6, 3)
	b.Add(7, 5, 6)
	b.Ld(8, 8, 7, 0)
	b.Addi(8, 8, 3)
	b.St(8, 8, 7, 0)
	b.Fcvtif(1, 8)
	b.Fmul(2, 1, 1)
	b.Andi(9, 8, 7)
	b.Beq(9, 22, "skip")
	b.Xor(10, 10, 8)
	b.Label("skip")
	b.Addi(20, 20, 1)
	b.Blt(20, 21, "loop")
	b.Halt()
	prog := b.MustBuild()
	effs := make([]emu.Effect, 0, 16*n)
	if _, err := emu.RunProgram(prog, 0, func(_ int, e *emu.Effect) error {
		effs = append(effs, *e)
		return nil
	}); err != nil {
		tb.Fatal(err)
	}
	return effs
}

// TestCoreConsumeZeroAlloc pins the timing-model hot path: consuming one
// effect (FU allocation, operand tracking, cache hierarchy access,
// branch prediction) performs zero heap allocations in steady state.
func TestCoreConsumeZeroAlloc(t *testing.T) {
	effs := benchEffects(t, 2000)
	core := MustNewCore(X2(), 2.8, ModeMain)
	for i := range effs { // warm caches, predictor tables and FU state
		core.Consume(&effs[i])
	}
	i := 0
	allocs := testing.AllocsPerRun(10000, func() {
		core.Consume(&effs[i%len(effs)])
		i++
	})
	if allocs != 0 {
		t.Errorf("Core.Consume allocates %.1f objects/op, want 0", allocs)
	}
}

// BenchmarkCoreConsume measures the timing-model path alone.
func BenchmarkCoreConsume(b *testing.B) {
	effs := benchEffects(b, 2000)
	core := MustNewCore(X2(), 2.8, ModeMain)
	for i := range effs {
		core.Consume(&effs[i])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Consume(&effs[i%len(effs)])
	}
}

// TestConsumeBatchZeroAlloc pins the batched delivery path at zero heap
// allocations per batch in steady state.
func TestConsumeBatchZeroAlloc(t *testing.T) {
	effs := benchEffects(t, 2000)
	core := MustNewCore(X2(), 2.8, ModeMain)
	core.ConsumeBatch(effs)
	allocs := testing.AllocsPerRun(1000, func() {
		core.ConsumeBatch(effs[:256])
	})
	if allocs != 0 {
		t.Errorf("Core.ConsumeBatch allocates %.1f objects/op, want 0", allocs)
	}
}

// TestConsumeBatchTimingIdentical proves batched delivery is
// cycle-identical to per-effect delivery: two cores fed the same effect
// stream — one a batch at a time, one an effect at a time — land on
// bit-equal cycle counts, instruction counts and issue tallies.
func TestConsumeBatchTimingIdentical(t *testing.T) {
	effs := benchEffects(t, 2000)
	one := MustNewCore(X2(), 2.8, ModeMain)
	bat := MustNewCore(X2(), 2.8, ModeMain)
	for lo := 0; lo < len(effs); {
		hi := lo + 97
		if hi > len(effs) {
			hi = len(effs)
		}
		bat.ConsumeBatch(effs[lo:hi])
		for i := lo; i < hi; i++ {
			one.Consume(&effs[i])
		}
		if one.Cycles() != bat.Cycles() || one.Insts() != bat.Insts() {
			t.Fatalf("after %d effects: cycles %v vs %v, insts %d vs %d",
				hi, one.Cycles(), bat.Cycles(), one.Insts(), bat.Insts())
		}
		lo = hi
	}
	if one.IssueCounts() != bat.IssueCounts() {
		t.Fatal("issue tallies diverged between batched and per-effect delivery")
	}
}

// BenchmarkConsumeBatch measures batched delivery in per-instruction
// terms (batches of 256), directly comparable to BenchmarkCoreConsume.
func BenchmarkConsumeBatch(b *testing.B) {
	effs := benchEffects(b, 2000)
	core := MustNewCore(X2(), 2.8, ModeMain)
	core.ConsumeBatch(effs)
	b.ReportAllocs()
	b.ResetTimer()
	for done := 0; done < b.N; {
		n := 256
		if rem := b.N - done; rem < n {
			n = rem
		}
		start := done % (len(effs) - 256)
		core.ConsumeBatch(effs[start : start+n])
		done += n
	}
}
