package cpu

import (
	"fmt"
	"math/bits"

	"paraverser/internal/branch"
	"paraverser/internal/cachesim"
	"paraverser/internal/emu"
	"paraverser/internal/isa"
)

// Mode selects how the timing model treats memory: a main core accesses
// its real data-cache hierarchy; a checker core's loads, atomics and
// non-repeatable reads are served from the LSL$ at L1 hit latency and its
// stores only access the load-store comparator, so a checker never
// generates data-side traffic (section VII-A, "Instruction Fetch"). A
// divergent checker additionally maintains a private memory image to
// cross-check logged load data against, so its loads and stores pay the
// real data-hierarchy cost like a main core — the price of the extra
// coverage divergent checking buys.
type Mode uint8

// Core modes. Enums start at one.
const (
	ModeInvalid Mode = iota
	ModeMain
	ModeChecker
	ModeCheckerDivergent
)

// Core is the timing model of one core. Create with NewCore; not safe for
// concurrent use.
type Core struct {
	cfg  Config
	mode Mode

	// FreqGHz is the current DVFS operating point.
	FreqGHz float64

	Hier *cachesim.Hierarchy
	BP   *branch.Unit

	// All times below are in core cycles.
	nextFetch  float64
	fetchSlots int
	redirected bool
	lastLine   uint64
	haveLine   bool
	// fetchShift is log2(L1I.LineBytes) when it is a power of two (every
	// shipped geometry), -1 otherwise: the fetch-line computation runs
	// once per simulated instruction and the division costs.
	fetchShift int32
	regInt     [isa.NumIntRegs]float64
	regFP      [isa.NumFPRegs]float64
	rob        ring
	lq         ring
	sq         ring
	mshr       ring
	// fuFree and fuCfg are dense per-FU-class tables indexed directly by
	// isa.Class (the map form cost two hash lookups per instruction on
	// the hottest path in the simulator). fuFree is a fixed-size array
	// rather than a slice per class: allocFU runs once per simulated
	// instruction, and the slice form paid a header load plus bounds
	// checks per scan (Config.Validate caps Count at maxFUPool).
	fuFree [isa.NumClasses][maxFUPool]float64
	fuN    [isa.NumClasses]int32
	// fuNext is the in-order fast path's round-robin cursor per class:
	// the index of the oldest-assigned pool entry (see allocFU).
	fuNext      [isa.NumClasses]int32
	fuCfg       [isa.NumClasses]FU
	lastIssue   float64
	issueSlots  int
	lastCommit  float64
	commitSlots int

	// Micro-trace hooks (microtrace.go). recTrace, when non-nil, records
	// every private-cache hit level and branch verdict; curTrace, when
	// non-nil, replays them instead of consulting tags and predictor.
	recTrace *MicroTrace
	curTrace *MicroTrace
	curPos   int

	insts  uint64
	cycles float64 // commit time of the most recent instruction

	// issued counts instructions per FU class — the only per-instruction
	// metric in the system. A dense array increment keeps Consume
	// allocation-free; obs.RunMetrics picks the counts up at collect.
	issued [isa.NumClasses]uint64
}

// ring is a fixed-size ring of completion times used for occupancy
// limits: writing a new entry requires the displaced (oldest) entry's
// time to have passed.
type ring struct {
	buf []float64
	idx int
}

func newRing(n int) ring {
	if n <= 0 {
		n = 1
	}
	return ring{buf: make([]float64, n)}
}

// push inserts t and returns the constraint time: the event can begin no
// earlier than the displaced entry.
func (r *ring) push(t float64) float64 {
	oldest := r.buf[r.idx]
	r.buf[r.idx] = t
	r.idx++
	if r.idx == len(r.buf) {
		r.idx = 0
	}
	return oldest
}

// oldest returns the displaced-entry constraint without inserting.
func (r *ring) peek() float64 { return r.buf[r.idx] }

// NewCore builds a core with fresh caches and predictor state. freqGHz
// of zero uses the configuration's nominal clock.
func NewCore(cfg Config, freqGHz float64, mode Mode) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if mode != ModeMain && mode != ModeChecker && mode != ModeCheckerDivergent {
		return nil, fmt.Errorf("cpu %q: invalid mode %d", cfg.Name, mode)
	}
	if freqGHz == 0 {
		freqGHz = cfg.NominalGHz
	}
	if freqGHz <= 0 || freqGHz > cfg.NominalGHz+1e-9 {
		return nil, fmt.Errorf("cpu %q: frequency %.2fGHz outside (0, %.2f]", cfg.Name, freqGHz, cfg.NominalGHz)
	}
	c := &Core{
		cfg:     cfg,
		mode:    mode,
		FreqGHz: freqGHz,
		Hier: &cachesim.Hierarchy{
			L1I: cachesim.MustNew(cfg.L1I),
			L1D: cachesim.MustNew(cfg.L1D),
			L2:  cachesim.MustNew(cfg.L2),
		},
	}
	if cfg.BigPredictor {
		c.BP = branch.NewUnit(branch.NewDefaultTAGE(), 13)
	} else {
		c.BP = branch.NewUnit(branch.NewSmallTAGE(), 11)
	}
	for class, fu := range cfg.FUs {
		c.fuN[class] = int32(fu.Count)
		c.fuCfg[class] = fu
	}
	c.fetchShift = -1
	if lb := cfg.L1I.LineBytes; lb&(lb-1) == 0 {
		c.fetchShift = int32(bits.TrailingZeros(uint(lb)))
	}
	rob := cfg.ROB
	if !cfg.OoO {
		rob = cfg.IQ
	}
	c.rob = newRing(rob)
	c.lq = newRing(cfg.LQ)
	c.sq = newRing(cfg.SQ)
	c.mshr = newRing(cfg.L1D.MSHRs)
	return c, nil
}

// MustNewCore is NewCore for static configurations.
func MustNewCore(cfg Config, freqGHz float64, mode Mode) *Core {
	c, err := NewCore(cfg, freqGHz, mode)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the core's configuration.
func (c *Core) Config() Config { return c.cfg }

// Mode returns the core's current mode.
func (c *Core) Mode() Mode { return c.mode }

// SetMode switches the core between main and checker duty (any core can
// serve as either, section IV). The pipeline state carries over; caches
// are managed by the caller (LSL reset etc.).
func (c *Core) SetMode(m Mode) { c.mode = m }

// Cycles returns the commit time of the most recently consumed
// instruction, in core cycles.
func (c *Core) Cycles() float64 { return c.cycles }

// TimeNS returns Cycles converted to nanoseconds at the current clock.
func (c *Core) TimeNS() float64 { return c.cycles / c.FreqGHz }

// Insts returns the number of instructions consumed.
func (c *Core) Insts() uint64 { return c.insts }

// IssueCounts returns the per-FU-class issue counters, indexed by
// isa.Class.
func (c *Core) IssueCounts() [isa.NumClasses]uint64 { return c.issued }

// IPC returns retired instructions per cycle.
func (c *Core) IPC() float64 {
	if c.cycles == 0 {
		return 0
	}
	return float64(c.insts) / c.cycles
}

// Stall delays the core by the given number of cycles (checkpoint
// serialisation, full-coverage back-pressure).
func (c *Core) Stall(cycles float64) {
	if cycles <= 0 {
		return
	}
	base := c.cycles
	if c.nextFetch > base {
		base = c.nextFetch
	}
	c.nextFetch = base + cycles
	c.fetchSlots = 0
	if c.cycles < c.nextFetch {
		c.cycles = c.nextFetch
	}
}

// StallNS is Stall expressed in nanoseconds.
func (c *Core) StallNS(ns float64) { c.Stall(ns * c.FreqGHz) }

// FetchBubble inserts a front-end bubble of the given length without
// draining the out-of-order window: the cost is largely hidden by
// in-flight work. This models a register checkpoint taken at commit
// without delaying it (ParaVerser's RCU), in contrast to Stall, which
// serialises against the committed state (DSN18-style checkpointing).
func (c *Core) FetchBubble(cycles float64) {
	if cycles <= 0 {
		return
	}
	c.nextFetch += cycles
	c.fetchSlots = 0
}

// AdvanceTo moves the core's clock forward to at least the given cycle
// count (used when a checker sleeps waiting for work).
func (c *Core) AdvanceTo(cycle float64) {
	if cycle > c.nextFetch {
		c.nextFetch = cycle
		c.fetchSlots = 0
	}
	if cycle > c.cycles {
		c.cycles = cycle
	}
}

// srcReady returns the cycle when all source operands of the instruction
// are available, walking the predecoded operand descriptor.
//
//paralint:hotpath
func (c *Core) srcReady(d *isa.DecInst) float64 {
	// The &31 masks are no-ops (registers are always < 32, isa.Validate)
	// that let the compiler drop the bounds check on each scoreboard read.
	var t float64
	for i := uint8(0); i < d.NIntSrc; i++ {
		if v := c.regInt[d.IntSrc[i]&31]; v > t {
			t = v
		}
	}
	for i := uint8(0); i < d.NFPSrc; i++ {
		if v := c.regFP[d.FPSrc[i]&31]; v > t {
			t = v
		}
	}
	return t
}

// allocFU reserves the least-loaded functional unit from the
// (predecoded) FU class's pool, returning its start time given the
// earliest possible issue time.
//
// The OoO path scans for the minimum (first-minimum tie-break, so the
// pool multiset — and therefore every downstream timestamp — is
// identical to the historical slice-based scan). In-order cores take an
// O(1) round-robin cursor instead, which selects the same minimum: with
// !OoO, issue is clamped to lastIssue (Consume) and so non-decreasing;
// the pool minimum is non-decreasing by construction; hence each
// assigned value start+InitInterval = max(issue, min)+II is
// non-decreasing, the pool always holds the last n assigned values, and
// the oldest-assigned entry — the cursor position — IS the minimum.
// Equal values make victim choice multiset-equivalent, so tie-breaks
// cannot diverge either.
//
//paralint:hotpath
func (c *Core) allocFU(fuClass isa.Class, earliest float64) (start float64, latency int) {
	pool := &c.fuFree[fuClass]
	fu := &c.fuCfg[fuClass]
	n := int(c.fuN[fuClass])
	if n > maxFUPool {
		n = maxFUPool // unreachable (Validate); lets the scan elide bounds checks
	}
	best := 0
	switch {
	case n == 1:
		// Single-unit pool (stores, dividers, every scalar-checker
		// class): the unit is pool[0]; skip the scan and the cursor
		// update (fuNext stays 0, which both paths would compute).
	case c.cfg.OoO:
		for i := 1; i < n; i++ {
			if pool[i] < pool[best] {
				best = i
			}
		}
	default:
		best = int(c.fuNext[fuClass]) & (maxFUPool - 1)
		next := best + 1
		if next >= n {
			next = 0
		}
		c.fuNext[fuClass] = int32(next)
	}
	start = earliest
	if pool[best] > start {
		start = pool[best]
	}
	pool[best] = start + float64(fu.InitInterval)
	return start, fu.Latency
}

// pauseCycles is the front-end idle a spin-wait hint costs: spin loops
// cover wall time with few executed instructions.
const pauseCycles = 48

// ConsumeBatch advances the timing model over a batch of effects in
// program order, as delivered by the block-compiled execution path. The
// cycle-accurate model carries per-instruction dependencies (scoreboard
// ready times, FU occupancy, fetch-line state) from one instruction
// into the next, so consumption cannot be reordered or coalesced — the
// batch form is timing-identical to per-effect delivery by
// construction and amortises only the call and dispatch overhead. The
// fetch-line tracker, MicroTrace cursor and cache hierarchy state all
// carry across batch boundaries exactly as they carry across Consume
// calls.
//
//paralint:hotpath
func (c *Core) ConsumeBatch(effs []emu.Effect) {
	for i := range effs {
		c.Consume(&effs[i])
	}
}

// Consume advances the timing model over one executed instruction.
//
//paralint:hotpath
func (c *Core) Consume(eff *emu.Effect) {
	d := eff.Dec
	if d == nil {
		// Hand-built effects (tests, tools) carry no predecode record;
		// derive one on the stack.
		tmp := isa.Predecode(eff.Inst)
		d = &tmp
	}
	in := eff.Inst
	class := eff.Class
	if in.Op == isa.OpPAUSE {
		c.FetchBubble(pauseCycles)
	}

	// --- fetch ---
	pcAddr := isa.PCToAddr(eff.PC)
	var lineAddr uint64
	if c.fetchShift >= 0 {
		lineAddr = pcAddr >> uint(c.fetchShift)
	} else {
		lineAddr = pcAddr / uint64(c.cfg.L1I.LineBytes)
	}
	if c.redirected || !c.haveLine || lineAddr != c.lastLine {
		var res cachesim.AccessResult
		if c.curTrace != nil {
			res = c.Hier.FetchAtLevel(pcAddr, int(c.microNext()))
		} else {
			res = c.Hier.Fetch(pcAddr)
			if c.recTrace != nil {
				c.recTrace.record(uint8(res.Level))
			}
		}
		if res.Level > 1 {
			// Miss: the front end stalls for the full fill latency.
			c.nextFetch += res.TotalCycles(c.FreqGHz)
			c.fetchSlots = 0
		}
		c.lastLine = lineAddr
		c.haveLine = true
		c.redirected = false
	}
	fetchAt := c.nextFetch
	c.fetchSlots++
	if c.fetchSlots >= c.cfg.FetchWidth {
		c.nextFetch++
		c.fetchSlots = 0
	}

	// --- dispatch ---
	dispatch := fetchAt + float64(c.cfg.FrontendDepth)
	if oldest := c.rob.peek(); oldest > dispatch {
		dispatch = oldest // window full: wait for the oldest to commit
	}

	// --- issue ---
	issue := dispatch
	if s := c.srcReady(d); s > issue {
		issue = s
	}
	if !c.cfg.OoO {
		// In-order issue: program order, width per cycle.
		if c.lastIssue > issue {
			issue = c.lastIssue
		}
		if issue == c.lastIssue {
			c.issueSlots++
			if c.issueSlots >= c.cfg.IssueWidth {
				issue++
				c.issueSlots = 0
			}
		} else {
			c.issueSlots = 1
		}
		c.lastIssue = issue
	}
	start, latency := c.allocFU(d.FUClass, issue)
	done := start + float64(latency)
	c.issued[d.FUClass]++

	// --- memory ---
	switch class {
	case isa.ClassLoad, isa.ClassAtomic, isa.ClassNonRepeat:
		done = c.loadDone(eff, start)
		if class != isa.ClassNonRepeat {
			if lqOld := c.lq.push(done); lqOld > start {
				// LQ occupancy pressure folds into completion.
				done += lqOld - start
			}
		}
	case isa.ClassStore:
		// Stores complete at commit via the write buffer; the cache
		// state is updated then. Occupancy tracked below.
	}

	// --- branch resolution ---
	if d.Flags&isa.DecBranch != 0 {
		resolveAt := done
		var correct bool
		if c.curTrace != nil {
			correct = c.microNext() != 0
		} else {
			correct = c.BP.Resolve(in.Op, eff.PC, eff.Taken, eff.NextPC)
			if c.recTrace != nil {
				b := uint8(0)
				if correct {
					b = 1
				}
				c.recTrace.record(b)
			}
		}
		if !correct {
			redirect := resolveAt + float64(c.cfg.FrontendDepth)
			if redirect > c.nextFetch {
				c.nextFetch = redirect
				c.fetchSlots = 0
			}
			c.redirected = true
		}
	} else if eff.Taken {
		// Taken non-branch cannot happen, but keep line tracking honest.
		c.redirected = true
	}

	// --- writeback ---
	if eff.WroteInt && in.Rd != isa.Zero {
		c.regInt[in.Rd] = done
	}
	if eff.WroteFP {
		c.regFP[in.Rd] = done
	}

	// --- commit ---
	commit := done
	if commit < c.lastCommit {
		commit = c.lastCommit
	}
	if commit == c.lastCommit {
		c.commitSlots++
		if c.commitSlots >= c.cfg.CommitWidth {
			commit++
			c.commitSlots = 0
		}
	} else {
		c.commitSlots = 1
	}
	c.lastCommit = commit

	if class == isa.ClassStore || class == isa.ClassAtomic {
		c.storeAtCommit(eff, commit)
	}

	c.rob.push(commit)
	c.insts++
	c.cycles = commit
}

// loadDone models the data access(es) of a load-class instruction and
// returns the completion time.
//
//paralint:hotpath
func (c *Core) loadDone(eff *emu.Effect, start float64) float64 {
	if c.mode == ModeChecker {
		// Checker loads are served from the LSL$: direct-indexed, no tag
		// comparison ("far simpler" than a CAM lookup, section IV-B), so
		// the hit is faster than a normal L1D access.
		return start + float64((c.cfg.L1D.HitCycles+1)/2)
	}
	// ModeCheckerDivergent falls through: its loads cross-check a private
	// memory image, so they pay the real hierarchy like a main core.
	if eff.Class == isa.ClassNonRepeat {
		// Timer/RNG reads: a system-register access, a few cycles.
		return start + 3
	}
	done := start
	for i := 0; i < eff.NMem; i++ {
		op := eff.Mem[i]
		if op.Kind != emu.MemLoad {
			continue
		}
		var res cachesim.AccessResult
		if c.curTrace != nil {
			res = c.Hier.DataAtLevel(op.Addr, false, int(c.microNext()))
		} else {
			res = c.Hier.Data(op.Addr, false)
			if c.recTrace != nil {
				c.recTrace.record(uint8(res.Level))
			}
		}
		lat := res.TotalCycles(c.FreqGHz)
		s := start
		if res.Level > 1 {
			// MSHR-bounded miss overlap.
			if oldest := c.mshr.push(s + lat); oldest > s {
				s = oldest
				c.mshr.buf[(c.mshr.idx+len(c.mshr.buf)-1)%len(c.mshr.buf)] = s + lat
			}
		}
		if d := s + lat; d > done {
			done = d
		}
	}
	return done
}

// storeAtCommit applies store-side cache effects at commit time.
//
//paralint:hotpath
func (c *Core) storeAtCommit(eff *emu.Effect, commit float64) {
	if c.mode == ModeChecker {
		// Checker stores only access the load-store comparator; there is
		// one comparator per load/store unit, so no extra cost
		// (section IV-E). A divergent checker commits every store to its
		// private image and falls through to the real store path.
		return
	}
	for i := 0; i < eff.NMem; i++ {
		op := eff.Mem[i]
		if op.Kind != emu.MemStore {
			continue
		}
		var res cachesim.AccessResult
		if c.curTrace != nil {
			res = c.Hier.DataAtLevel(op.Addr, true, int(c.microNext()))
		} else {
			res = c.Hier.Data(op.Addr, true)
			if c.recTrace != nil {
				c.recTrace.record(uint8(res.Level))
			}
		}
		if res.Level > 1 {
			// Write misses allocate via the MSHRs but do not stall
			// commit (write buffer); they do consume an MSHR slot.
			c.mshr.push(commit + res.TotalCycles(c.FreqGHz))
		}
		if oldest := c.sq.push(commit); oldest > commit {
			// SQ full: later stores (and thus commit) back up. Model by
			// pushing the commit horizon.
			c.lastCommit = oldest
		}
	}
}
