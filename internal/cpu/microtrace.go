package cpu

import "fmt"

// MicroTrace records the micro-architectural outcomes of one main core
// over one instruction stream: every private-cache hit level (fetch,
// load and store accesses, in consume order) and every branch-prediction
// verdict. The outcomes are a pure function of the functional
// instruction stream and the core's cache/predictor geometry — never of
// times, frequency, or shared-system state — so a trace recorded once
// can replay the core's timing bit-exactly on any later run of the same
// stream on the same geometry, at any DVFS point, without touching cache
// tags or predictor tables. Level-3 accesses are NOT memoised: replay
// re-issues them to the shared LLC/NoC/DRAM model in the original order,
// so shared-state mutations stay bit-identical too.
//
// Events use one byte each: cache accesses store the level (1..3),
// branch resolutions store the verdict (0 mispredict, 1 correct).
// Record and replay walk the identical deterministic consume sequence,
// so no tags are needed.
type MicroTrace struct {
	events []uint8
}

// Len returns the number of recorded events.
func (t *MicroTrace) Len() int { return len(t.events) }

// Bytes returns the trace's memory footprint in bytes.
func (t *MicroTrace) Bytes() int { return len(t.events) }

// GeometryKey identifies the core geometry a MicroTrace is valid for:
// the private-cache configurations (hit levels) and the predictor class
// (branch verdicts). Frequency and pipeline widths are deliberately
// absent — they consume the recorded outcomes but do not shape them.
func GeometryKey(cfg *Config) string {
	return fmt.Sprintf("%+v|%+v|%+v|%v", cfg.L1I, cfg.L1D, cfg.L2, cfg.BigPredictor)
}

// SetMicroRecord attaches (or with nil detaches) a trace the core
// appends every micro-architectural outcome to.
func (c *Core) SetMicroRecord(t *MicroTrace) { c.recTrace = t }

// SetMicroReplay attaches (or with nil detaches) a trace the core
// consumes recorded outcomes from instead of its private caches and
// predictor. The cursor starts at the beginning.
func (c *Core) SetMicroReplay(t *MicroTrace) { c.curTrace = t; c.curPos = 0 }

// microNext pops the next recorded event. Exhaustion means the replayed
// stream diverged from the recorded one, which the stream-eligibility
// rules exclude; fail loudly rather than silently desynchronise timing.
func (c *Core) microNext() uint8 {
	t := c.curTrace
	if c.curPos >= len(t.events) {
		panic("cpu: micro-trace exhausted (replayed stream diverged from recording)")
	}
	e := t.events[c.curPos]
	c.curPos++
	return e
}

// record appends one event byte.
func (t *MicroTrace) record(e uint8) {
	t.events = append(t.events, e)
}
