//paralint:deterministic

// Package cpu implements the instruction-grain cycle-accounting timing
// models for the cores in the study: a 5-wide out-of-order core modelled
// on the Arm Cortex-X2, a 3-wide in-order core modelled on the
// Cortex-A510, and a scalar in-order core modelling the dedicated checker
// cores (Cortex-A55 limited to scalar, emulating A34/A35) used by the
// DSN18 and ParaDox baselines, per section VI of the paper.
//
// The model is interval-style: instructions stream through in program
// order and the model accounts fetch bandwidth and instruction-cache
// misses, decode/dispatch width, ROB/LQ/SQ occupancy, operand readiness
// through real per-class functional-unit latencies, functional-unit port
// contention, MSHR-bounded miss overlap, and branch mispredict flushes
// from a real TAGE-lite predictor. Out-of-order cores overlap independent
// work inside the ROB window; in-order cores stall issue on any unready
// source.
package cpu

import (
	"fmt"

	"paraverser/internal/cachesim"
	"paraverser/internal/isa"
)

// maxFUPool bounds FU.Count so the core can keep the per-class
// free-time tables in fixed-size arrays scanned without indirection on
// the per-instruction hot path (core.go allocFU).
const maxFUPool = 8

// FU describes one functional-unit pool.
type FU struct {
	// Count is the number of units in the pool (at most maxFUPool).
	Count int
	// Latency is the result latency in cycles.
	Latency int
	// InitInterval is the issue-to-issue interval per unit (1 = fully
	// pipelined; Latency = unpipelined).
	InitInterval int
}

// Config describes a core model.
type Config struct {
	Name string
	OoO  bool

	FetchWidth  int
	IssueWidth  int
	CommitWidth int
	// FrontendDepth is the fetch-to-dispatch depth in cycles, which also
	// sets the branch misprediction penalty.
	FrontendDepth int

	ROB int // out-of-order window (OoO only)
	IQ  int
	LQ  int
	SQ  int

	// FUs maps instruction classes to their unit pools. ClassBranch and
	// ClassJump resolve on the branch pool; ClassNonRepeat and
	// ClassAtomic use the load/store pools.
	FUs map[isa.Class]FU

	L1I cachesim.Config
	L1D cachesim.Config
	L2  cachesim.Config

	// BigPredictor selects the large TAGE configuration (64KiB MPP-TAGE
	// stand-in) rather than the small one.
	BigPredictor bool

	// NominalGHz is the core's maximum clock.
	NominalGHz float64

	// AreaMM2 is the per-core area from die-shot measurements
	// (section VII-E), used by the power/area model.
	AreaMM2 float64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.FetchWidth <= 0 || c.IssueWidth <= 0 || c.CommitWidth <= 0 {
		return fmt.Errorf("cpu %q: non-positive width", c.Name)
	}
	if c.OoO && c.ROB <= 0 {
		return fmt.Errorf("cpu %q: OoO core needs a ROB", c.Name)
	}
	if c.NominalGHz <= 0 {
		return fmt.Errorf("cpu %q: non-positive clock", c.Name)
	}
	for _, class := range []isa.Class{
		isa.ClassIntALU, isa.ClassIntMul, isa.ClassIntDiv,
		isa.ClassFPAdd, isa.ClassFPMul, isa.ClassFPDiv,
		isa.ClassLoad, isa.ClassStore, isa.ClassBranch,
	} {
		fu, ok := c.FUs[class]
		if !ok || fu.Count <= 0 || fu.Latency <= 0 || fu.InitInterval <= 0 {
			return fmt.Errorf("cpu %q: missing or invalid FU pool for class %d", c.Name, class)
		}
		if fu.Count > maxFUPool {
			return fmt.Errorf("cpu %q: FU pool for class %d has %d units, max %d", c.Name, class, fu.Count, maxFUPool)
		}
	}
	for _, cc := range []cachesim.Config{c.L1I, c.L1D, c.L2} {
		if err := cc.Validate(); err != nil {
			return fmt.Errorf("cpu %q: %w", c.Name, err)
		}
	}
	return nil
}

// X2 returns the big-core model of Table I: 5-wide out-of-order at 3GHz,
// 288-entry ROB, 120-entry IQ, 85-entry LQ, 90-entry SQ, 2 branch ALUs,
// 2 simple int, 2 complex int, 4 FP/SIMD, 1 load-only + 1 load-store.
func X2() Config {
	return Config{
		Name:          "X2",
		OoO:           true,
		FetchWidth:    5,
		IssueWidth:    5,
		CommitWidth:   5,
		FrontendDepth: 11,
		ROB:           288,
		IQ:            120,
		LQ:            85,
		SQ:            90,
		FUs: map[isa.Class]FU{
			isa.ClassIntALU: {Count: 4, Latency: 1, InitInterval: 1},
			isa.ClassIntMul: {Count: 2, Latency: 3, InitInterval: 1},
			isa.ClassIntDiv: {Count: 1, Latency: 9, InitInterval: 7},
			isa.ClassFPAdd:  {Count: 4, Latency: 2, InitInterval: 1},
			isa.ClassFPMul:  {Count: 4, Latency: 3, InitInterval: 1},
			// X2 SOG: FDIV ~10-15 cycles, partially pipelined.
			isa.ClassFPDiv:  {Count: 2, Latency: 10, InitInterval: 7},
			isa.ClassLoad:   {Count: 2, Latency: 1, InitInterval: 1},
			isa.ClassStore:  {Count: 1, Latency: 1, InitInterval: 1},
			isa.ClassBranch: {Count: 2, Latency: 1, InitInterval: 1},
		},
		L1I: cachesim.Config{Name: "X2.L1I", SizeBytes: 64 << 10, Ways: 4,
			LineBytes: 64, HitCycles: 2, MSHRs: 16},
		L1D: cachesim.Config{Name: "X2.L1D", SizeBytes: 64 << 10, Ways: 4,
			LineBytes: 64, HitCycles: 4, MSHRs: 16},
		L2: cachesim.Config{Name: "X2.L2", SizeBytes: 1 << 20, Ways: 8,
			LineBytes: 64, HitCycles: 9, MSHRs: 32},
		BigPredictor: true,
		NominalGHz:   3.0,
		AreaMM2:      2.43,
	}
}

// A510 returns the little-core model of Table I: 3-wide in-order at up to
// 2GHz, 16-entry LSQ, 1 branch ALU, 3 int, 1 div, 2 FP/SIMD, 1 load-only
// + 1 load-store. The 22-cycle unpipelined FDIV (A510 SOG) is what makes
// bwaves the outlier benchmark throughout the evaluation.
func A510() Config {
	return Config{
		Name:          "A510",
		OoO:           false,
		FetchWidth:    3,
		IssueWidth:    3,
		CommitWidth:   3,
		FrontendDepth: 8,
		IQ:            16,
		LQ:            8,
		SQ:            8,
		FUs: map[isa.Class]FU{
			isa.ClassIntALU: {Count: 3, Latency: 1, InitInterval: 1},
			isa.ClassIntMul: {Count: 1, Latency: 3, InitInterval: 2},
			isa.ClassIntDiv: {Count: 1, Latency: 12, InitInterval: 12},
			isa.ClassFPAdd:  {Count: 2, Latency: 3, InitInterval: 1},
			isa.ClassFPMul:  {Count: 2, Latency: 4, InitInterval: 1},
			isa.ClassFPDiv:  {Count: 1, Latency: 22, InitInterval: 22},
			isa.ClassLoad:   {Count: 2, Latency: 1, InitInterval: 1},
			isa.ClassStore:  {Count: 1, Latency: 1, InitInterval: 1},
			isa.ClassBranch: {Count: 1, Latency: 1, InitInterval: 1},
		},
		L1I: cachesim.Config{Name: "A510.L1I", SizeBytes: 32 << 10, Ways: 4,
			LineBytes: 64, HitCycles: 1, MSHRs: 12},
		L1D: cachesim.Config{Name: "A510.L1D", SizeBytes: 32 << 10, Ways: 4,
			LineBytes: 64, HitCycles: 1, MSHRs: 12},
		L2: cachesim.Config{Name: "A510.L2", SizeBytes: 256 << 10, Ways: 8,
			LineBytes: 64, HitCycles: 9, MSHRs: 16},
		BigPredictor: false,
		NominalGHz:   2.0,
		AreaMM2:      0.44,
	}
}

// A35 returns the dedicated-checker model: an A55 limited to scalar issue
// to emulate the in-order Cortex-A34/A35 cores assumed by the DSN18 and
// ParaDox baselines (section VI). Its area comes from the paper's
// extrapolation: 16 of them total 0.84mm².
func A35() Config {
	cfg := A510()
	cfg.Name = "A35"
	cfg.FetchWidth = 1
	cfg.IssueWidth = 1
	cfg.CommitWidth = 1
	cfg.FrontendDepth = 6
	cfg.IQ = 4
	cfg.LQ = 4
	cfg.SQ = 4
	cfg.FUs = map[isa.Class]FU{
		isa.ClassIntALU: {Count: 1, Latency: 1, InitInterval: 1},
		isa.ClassIntMul: {Count: 1, Latency: 4, InitInterval: 2},
		isa.ClassIntDiv: {Count: 1, Latency: 14, InitInterval: 14},
		isa.ClassFPAdd:  {Count: 1, Latency: 4, InitInterval: 1},
		isa.ClassFPMul:  {Count: 1, Latency: 4, InitInterval: 2},
		isa.ClassFPDiv:  {Count: 1, Latency: 22, InitInterval: 22},
		isa.ClassLoad:   {Count: 1, Latency: 1, InitInterval: 1},
		isa.ClassStore:  {Count: 1, Latency: 1, InitInterval: 1},
		isa.ClassBranch: {Count: 1, Latency: 1, InitInterval: 1},
	}
	cfg.L1I = cachesim.Config{Name: "A35.L1I", SizeBytes: 16 << 10, Ways: 4,
		LineBytes: 64, HitCycles: 1, MSHRs: 4}
	cfg.L1D = cachesim.Config{Name: "A35.L1D", SizeBytes: 16 << 10, Ways: 4,
		LineBytes: 64, HitCycles: 1, MSHRs: 4}
	cfg.L2 = cachesim.Config{Name: "A35.L2", SizeBytes: 64 << 10, Ways: 4,
		LineBytes: 64, HitCycles: 6, MSHRs: 4}
	cfg.NominalGHz = 1.0
	cfg.AreaMM2 = 0.84 / 16
	return cfg
}
