package cpu

import (
	"testing"

	"paraverser/internal/emu"
	"paraverser/internal/isa"
)

// driveCore streams prog's effects through core, recording or replaying
// a micro trace, and returns the final cycle count.
func driveCore(t *testing.T, core *Core, prog *isa.Program) float64 {
	t.Helper()
	if _, err := emu.RunProgram(prog, 0, func(_ int, e *emu.Effect) error {
		core.Consume(e)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return core.Cycles()
}

// TestMicroTraceReplayBitExact: a core replaying a recorded micro trace
// must produce bit-identical timing to the live run, with the private
// caches and predictor never consulted — including for a cache-pressure
// workload where hit levels actually vary.
func TestMicroTraceReplayBitExact(t *testing.T) {
	for _, tc := range []struct {
		name string
		prog *isa.Program
	}{
		{"ilp", ilpProgram(500)},
		{"chase", pointerChase(512, 3000)},
		{"fdiv", fdivProgram(200)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			live := MustNewCore(X2(), 3.0, ModeMain)
			tr := &MicroTrace{}
			live.SetMicroRecord(tr)
			want := driveCore(t, live, tc.prog)
			if tr.Len() == 0 {
				t.Fatal("no events recorded")
			}

			rep := MustNewCore(X2(), 3.0, ModeMain)
			rep.SetMicroReplay(tr)
			got := driveCore(t, rep, tc.prog)
			if got != want {
				t.Errorf("replay cycles %v != live %v", got, want)
			}
			if rep.Insts() != live.Insts() {
				t.Errorf("replay insts %d != live %d", rep.Insts(), live.Insts())
			}
			if rep.curPos != tr.Len() {
				t.Errorf("cursor consumed %d of %d events", rep.curPos, tr.Len())
			}
		})
	}
}

// TestMicroTraceReplayAcrossFrequency: hit levels and branch verdicts
// are frequency-independent, so one trace must replay a different DVFS
// point bit-exactly (matching a live run at that frequency).
func TestMicroTraceReplayAcrossFrequency(t *testing.T) {
	prog := pointerChase(256, 2000)

	rec := MustNewCore(X2(), 3.0, ModeMain)
	tr := &MicroTrace{}
	rec.SetMicroRecord(tr)
	driveCore(t, rec, prog)

	want := driveCore(t, MustNewCore(X2(), 1.5, ModeMain), prog)
	rep := MustNewCore(X2(), 1.5, ModeMain)
	rep.SetMicroReplay(tr)
	if got := driveCore(t, rep, prog); got != want {
		t.Errorf("cross-frequency replay cycles %v != live %v", got, want)
	}
}

// TestGeometryKeyDiscriminates: distinct cache/predictor geometries get
// distinct keys; pipeline-width differences do not split the key.
func TestGeometryKeyDiscriminates(t *testing.T) {
	x2, a510 := X2(), A510()
	if GeometryKey(&x2) == GeometryKey(&a510) {
		t.Error("X2 and A510 share a geometry key")
	}
	wide := x2
	wide.IssueWidth++
	wide.FetchWidth++
	if GeometryKey(&x2) != GeometryKey(&wide) {
		t.Error("pipeline width split the geometry key")
	}
}
