package cpu

import (
	"testing"

	"paraverser/internal/asm"
	"paraverser/internal/emu"
	"paraverser/internal/isa"
)

// runOn executes prog functionally and streams the effects through a core
// model, returning the core.
func runOn(t *testing.T, cfg Config, freq float64, mode Mode, prog *isa.Program, limit int64) *Core {
	t.Helper()
	core := MustNewCore(cfg, freq, mode)
	_, err := emu.RunProgram(prog, limit, func(_ int, e *emu.Effect) error {
		core.Consume(e)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return core
}

// ilpProgram builds a loop of independent adds: lots of ILP.
func ilpProgram(iters int64) *isa.Program {
	b := asm.New("ilp")
	b.Li(20, 0)
	b.Li(21, iters)
	b.Label("loop")
	for r := isa.Reg(5); r < 13; r++ {
		b.Addi(r, r, 1)
	}
	b.Addi(20, 20, 1)
	b.Blt(20, 21, "loop")
	b.Halt()
	return b.MustBuild()
}

// fdivProgram builds a loop dominated by dependent FP divides.
func fdivProgram(iters int64) *isa.Program {
	b := asm.New("fdiv")
	da := b.Float64(1e30)
	db := b.Float64(1.0001)
	b.Li(5, int64(isa.DefaultDataBase))
	b.Fld(1, 5, int64(da))
	b.Fld(2, 5, int64(db))
	b.Li(20, 0)
	b.Li(21, iters)
	b.Label("loop")
	for i := 0; i < 4; i++ {
		b.Fdiv(1, 1, 2)
	}
	b.Addi(20, 20, 1)
	b.Blt(20, 21, "loop")
	b.Halt()
	return b.MustBuild()
}

// pointerChase builds a memory-latency-bound loop over a large ring: one
// cache line per node, visited in a scrambled permutation so successive
// loads are dependent and spread across sets.
func pointerChase(nodes int, iters int64) *isa.Program {
	b := asm.New("chase")
	const stride = 64
	start := b.Reserve(nodes * stride)
	for i := 0; i < nodes; i++ {
		next := (i*7919 + 1) % nodes
		addr := isa.DefaultDataBase + start + uint64(next*stride)
		b.SetWord64(start+uint64(i*stride), addr)
	}
	b.Li(5, int64(isa.DefaultDataBase+start))
	b.Li(20, 0)
	b.Li(21, iters)
	b.Label("loop")
	b.Ld(8, 5, 5, 0)
	b.Addi(20, 20, 1)
	b.Blt(20, 21, "loop")
	b.Halt()
	return b.MustBuild()
}

func TestX2FasterThanA510OnILP(t *testing.T) {
	prog := ilpProgram(2000)
	x2 := runOn(t, X2(), 3.0, ModeMain, prog, 0)
	a510 := runOn(t, A510(), 2.0, ModeMain, prog, 0)
	if x2.IPC() <= a510.IPC() {
		t.Errorf("X2 IPC %.2f <= A510 IPC %.2f on ILP workload", x2.IPC(), a510.IPC())
	}
	if x2.IPC() < 2.5 {
		t.Errorf("X2 IPC %.2f too low for pure-ILP loop", x2.IPC())
	}
	if a510.IPC() > 3.01 {
		t.Errorf("A510 IPC %.2f exceeds its width", a510.IPC())
	}
}

func TestScalarCoreIPCBounded(t *testing.T) {
	prog := ilpProgram(1000)
	a35 := runOn(t, A35(), 1.0, ModeMain, prog, 0)
	if a35.IPC() > 1.01 {
		t.Errorf("scalar core IPC %.2f > 1", a35.IPC())
	}
}

func TestFdivGapBetweenBigAndLittle(t *testing.T) {
	// The bwaves effect: the A510's 22-cycle unpipelined FDIV makes the
	// little core disproportionately slower on divide-heavy code than on
	// integer code (paper section VII-A).
	fp := fdivProgram(500)
	ints := ilpProgram(500)

	x2fp := runOn(t, X2(), 3.0, ModeMain, fp, 0)
	a5fp := runOn(t, A510(), 2.0, ModeMain, fp, 0)
	x2i := runOn(t, X2(), 3.0, ModeMain, ints, 0)
	a5i := runOn(t, A510(), 2.0, ModeMain, ints, 0)

	fpGap := a5fp.TimeNS() / x2fp.TimeNS()
	intGap := a5i.TimeNS() / x2i.TimeNS()
	if fpGap <= intGap {
		t.Errorf("fdiv gap %.2f <= int gap %.2f; little core should suffer more on fdiv", fpGap, intGap)
	}
}

func TestCheckerModeFasterOnMemoryBound(t *testing.T) {
	// Checker loads come from the LSL$ (always L1-hit), so a checker
	// should be much faster than a main core on a pointer chase — the
	// effect that lets 2 A510s keep up with an X2 on GAP (fig. 9).
	prog := pointerChase(16384, 30000)
	main := runOn(t, A510(), 2.0, ModeMain, prog, 0)
	checker := runOn(t, A510(), 2.0, ModeChecker, prog, 0)
	if checker.Cycles() >= main.Cycles()*0.6 {
		t.Errorf("checker cycles %.0f not << main cycles %.0f on memory-bound code",
			checker.Cycles(), main.Cycles())
	}
}

func TestFrequencyScalesTime(t *testing.T) {
	prog := ilpProgram(1000)
	full := runOn(t, A510(), 2.0, ModeMain, prog, 0)
	half := runOn(t, A510(), 1.0, ModeMain, prog, 0)
	ratio := half.TimeNS() / full.TimeNS()
	// Compute-bound: halving frequency should roughly double time.
	if ratio < 1.7 || ratio > 2.1 {
		t.Errorf("half-frequency time ratio %.2f, want ~2 for compute-bound code", ratio)
	}
}

func TestMispredictsSlowExecution(t *testing.T) {
	// Data-dependent branches on random data vs the same loop with a
	// fixed direction.
	build := func(random bool) *isa.Program {
		b := asm.New("br")
		b.Li(20, 0)
		b.Li(21, 3000)
		b.Label("loop")
		if random {
			b.Rand(5)
			b.Andi(5, 5, 1)
		} else {
			b.Li(5, 0)
		}
		b.Beq(5, isa.Zero, "even")
		b.Addi(6, 6, 1)
		b.Jmp("join")
		b.Label("even")
		b.Addi(7, 7, 1)
		b.Label("join")
		b.Addi(20, 20, 1)
		b.Blt(20, 21, "loop")
		b.Halt()
		return b.MustBuild()
	}
	pred := runOn(t, X2(), 3.0, ModeMain, build(false), 0)
	rand := runOn(t, X2(), 3.0, ModeMain, build(true), 0)
	if rand.BP.Stats.MispredictRate() <= pred.BP.Stats.MispredictRate() {
		t.Error("random branches not mispredicting more")
	}
	if rand.Cycles() <= pred.Cycles() {
		t.Error("mispredicts not costing cycles")
	}
}

func TestStallAdvancesClock(t *testing.T) {
	prog := ilpProgram(100)
	c := runOn(t, X2(), 3.0, ModeMain, prog, 0)
	before := c.Cycles()
	c.Stall(1000)
	if c.Cycles() < before+1000 {
		t.Errorf("stall did not advance clock: %.0f -> %.0f", before, c.Cycles())
	}
	c2 := MustNewCore(X2(), 3.0, ModeMain)
	c2.StallNS(100)
	if c2.Cycles() < 299 {
		t.Errorf("StallNS(100) at 3GHz = %.0f cycles, want ~300", c2.Cycles())
	}
}

func TestAdvanceToMonotonic(t *testing.T) {
	c := MustNewCore(A510(), 2.0, ModeChecker)
	c.AdvanceTo(500)
	if c.Cycles() != 500 {
		t.Errorf("AdvanceTo: cycles = %.0f", c.Cycles())
	}
	c.AdvanceTo(100) // must not move backwards
	if c.Cycles() != 500 {
		t.Error("AdvanceTo moved clock backwards")
	}
}

func TestNewCoreRejectsBadArgs(t *testing.T) {
	if _, err := NewCore(X2(), 5.0, ModeMain); err == nil {
		t.Error("want error for over-nominal frequency")
	}
	if _, err := NewCore(X2(), 3.0, ModeInvalid); err == nil {
		t.Error("want error for invalid mode")
	}
	bad := X2()
	bad.ROB = 0
	if _, err := NewCore(bad, 3.0, ModeMain); err == nil {
		t.Error("want error for OoO core without ROB")
	}
}

func TestConfigsValidate(t *testing.T) {
	for _, cfg := range []Config{X2(), A510(), A35()} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
	}
}

func TestOoOOverlapsCacheMisses(t *testing.T) {
	// Independent loads to distinct lines should overlap on the X2 (MLP)
	// but serialise on a dependent chain.
	independent := func() *isa.Program {
		b := asm.New("ind")
		b.Reserve(1 << 20)
		b.Li(5, int64(isa.DefaultDataBase))
		b.Li(20, 0)
		b.Li(21, 200)
		b.Label("loop")
		for i := int64(0); i < 4; i++ {
			b.Ld(8, isa.Reg(6+i), 5, i*4096)
		}
		b.Addi(5, 5, 4*4096)
		b.Addi(20, 20, 1)
		b.Blt(20, 21, "loop")
		b.Halt()
		return b.MustBuild()
	}()
	chase := pointerChase(32768, 40000)

	ind := runOn(t, X2(), 3.0, ModeMain, independent, 0)
	dep := runOn(t, X2(), 3.0, ModeMain, chase, 0)
	// Per-miss cost should be far lower with independent misses.
	indPerInst := ind.Cycles() / float64(ind.Insts())
	depPerInst := dep.Cycles() / float64(dep.Insts())
	if indPerInst >= depPerInst {
		t.Errorf("independent misses (%.1f cyc/inst) not cheaper than dependent (%.1f)",
			indPerInst, depPerInst)
	}
}

func TestPauseCoversWallTimeCheaply(t *testing.T) {
	// A spin loop with PAUSE covers far more cycles per instruction than
	// one without: that is the point of the spin-wait hint.
	build := func(pause bool) *isa.Program {
		b := asm.New("spin")
		b.Li(20, 0)
		b.Li(21, 500)
		b.Label("loop")
		if pause {
			b.Pause()
		}
		b.Addi(20, 20, 1)
		b.Blt(20, 21, "loop")
		b.Halt()
		return b.MustBuild()
	}
	plain := runOn(t, X2(), 3.0, ModeMain, build(false), 0)
	paused := runOn(t, X2(), 3.0, ModeMain, build(true), 0)
	cppPlain := plain.Cycles() / float64(plain.Insts())
	cppPause := paused.Cycles() / float64(paused.Insts())
	if cppPause < 8*cppPlain {
		t.Errorf("PAUSE cycles/inst %.1f not >> plain %.1f", cppPause, cppPlain)
	}
}

func TestCheckerLSLFasterThanL1D(t *testing.T) {
	// Checker loads come from the direct-indexed LSL$: cheaper than a
	// tagged L1D hit on the same dependent-load chain.
	prog := pointerChase(256, 5000) // fits in L1D: every main load hits
	main := runOn(t, X2(), 3.0, ModeMain, prog, 0)
	checker := runOn(t, X2(), 3.0, ModeChecker, prog, 0)
	if checker.Cycles() >= main.Cycles() {
		t.Errorf("checker %.0f cycles not faster than L1-hitting main %.0f", checker.Cycles(), main.Cycles())
	}
}

func TestSetMode(t *testing.T) {
	c := MustNewCore(A510(), 2.0, ModeMain)
	if c.Mode() != ModeMain {
		t.Fatal("mode not main")
	}
	c.SetMode(ModeChecker)
	if c.Mode() != ModeChecker {
		t.Fatal("mode switch failed")
	}
}

func TestSWPOccupiesLoadAndStoreSide(t *testing.T) {
	// Atomic swaps generate both a load and a store; a SWP-heavy loop
	// must be slower than a load-only loop of the same length.
	build := func(atomic bool) *isa.Program {
		b := asm.New("at")
		b.Reserve(4096)
		b.Li(5, int64(isa.DefaultDataBase))
		b.Li(20, 0)
		b.Li(21, 2000)
		b.Label("loop")
		if atomic {
			b.Swp(6, 5, 7)
		} else {
			b.Ld(8, 6, 5, 0)
		}
		b.Addi(20, 20, 1)
		b.Blt(20, 21, "loop")
		b.Halt()
		return b.MustBuild()
	}
	loads := runOn(t, A510(), 2.0, ModeMain, build(false), 0)
	swps := runOn(t, A510(), 2.0, ModeMain, build(true), 0)
	if swps.Cycles() < loads.Cycles() {
		t.Errorf("SWP loop (%.0f) faster than load loop (%.0f)", swps.Cycles(), loads.Cycles())
	}
}

func TestInOrderStallsOnUnreadySource(t *testing.T) {
	// Dependent long-latency chain: the in-order core must approach
	// latency-bound cycles; an independent stream must not.
	dep := fdivProgram(200)
	a510dep := runOn(t, A510(), 2.0, ModeMain, dep, 0)
	perInst := a510dep.Cycles() / float64(a510dep.Insts())
	// 4 dependent 22-cycle divides per ~7-instruction iteration.
	if perInst < 8 {
		t.Errorf("dependent fdiv chain %.1f cyc/inst on A510, want latency-bound (>= 8)", perInst)
	}
}
